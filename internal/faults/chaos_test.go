// Chaos suite for the failure-containment layer: each test injects one
// fault class (parser panic, truncated config, routing oscillation,
// budget exhaustion, deadline expiry) into a realistic snapshot and
// asserts the engine degrades — structured diagnostic naming stage and
// device, healthy devices still answering questions — instead of dying.
//
// The suite lives in package faults_test so it can drive the full stack
// (core, pipeline, dataplane) without an import cycle; the injector is
// process-global, so these tests must not run in parallel.
package faults_test

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/diag"
	"repro/internal/faults"
	"repro/internal/netgen"
	"repro/internal/pipeline"
	"repro/internal/testnet"
)

// iosConfig emits a minimal IOS-style device with one LAN interface.
func iosConfig(host, addr string) string {
	return "hostname " + host + "\n" +
		"interface Ethernet1\n" +
		" ip address " + addr + " 255.255.255.0\n" +
		"!\nend\n"
}

// TestChaosParserPanicQuarantine injects a panic into one device's parse
// and asserts the device is quarantined with a panic diagnostic while the
// rest of the snapshot still builds a data plane and answers questions.
func TestChaosParserPanicQuarantine(t *testing.T) {
	inj := faults.New().Enable("parse", "r2", faults.Rule{Kind: faults.Panic})
	defer faults.Activate(inj)()

	snap := core.LoadTextWith(pipeline.New(pipeline.Config{}), map[string]string{
		"r1": iosConfig("r1", "10.0.1.1"),
		"r2": iosConfig("r2", "10.0.2.1"),
		"r3": iosConfig("r3", "10.0.3.1"),
	})

	if hits := inj.Hits()["parse/r2"]; hits == 0 {
		t.Fatal("injected parse fault never fired")
	}
	if _, ok := snap.Net.Devices["r2"]; ok {
		t.Error("panicking device r2 should be excluded from the network")
	}
	if q := snap.Quarantined(); len(q) != 1 || q[0] != "r2" {
		t.Errorf("Quarantined() = %v, want [r2]", q)
	}
	ds := snap.Diags()
	var sawPanic, sawQuarantine bool
	for _, d := range ds {
		if d.Stage != diag.StageParse || d.Device != "r2" {
			continue
		}
		switch d.Kind {
		case diag.KindPanic:
			sawPanic = true
			if d.Stack == "" {
				t.Error("panic diagnostic is missing its stack")
			}
		case diag.KindQuarantine:
			sawQuarantine = true
		}
	}
	if !sawPanic || !sawQuarantine {
		t.Errorf("want parse/r2 panic + quarantine diagnostics, got %s", diag.Summary(ds))
	}
	if !snap.Degraded() {
		t.Error("snapshot with a quarantined device should report Degraded")
	}

	// Healthy devices remain queryable end to end.
	if rts := snap.Routes("r1"); len(rts) == 0 {
		t.Error("healthy device r1 has no routes after quarantine of r2")
	}
	if got := len(snap.Net.Devices); got != 2 {
		t.Errorf("want 2 healthy devices, got %d", got)
	}
}

// TestChaosTruncatedConfig models a half-written configuration file: a
// generated fabric config cut off mid-statement must still parse into a
// usable device (warnings, never a crash), honoring the paper's
// "always produce some answer" contract.
func TestChaosTruncatedConfig(t *testing.T) {
	fab := netgen.Fabric(netgen.FabricParams{
		Name: "tr", Spines: 1, Pods: 1, AggPerPod: 1, TorPerPod: 1, HostNetsPerTor: 1})
	texts := make(map[string]string, len(fab.Devices))
	for _, d := range fab.Devices {
		texts[d.Hostname] = d.Text
	}
	// Truncate the ToR's config in the middle of a line.
	tor := fab.Devices[len(fab.Devices)-1].Hostname
	texts[tor] = texts[tor][:2*len(texts[tor])/3]

	snap := core.LoadTextWith(pipeline.New(pipeline.Config{}), texts)
	if _, ok := snap.Net.Devices[tor]; !ok {
		t.Fatalf("truncated device %s should still produce a model", tor)
	}
	if got := len(snap.Net.Devices); got != len(fab.Devices) {
		t.Errorf("want all %d devices parsed, got %d", len(fab.Devices), got)
	}
	// The degraded fabric still runs the whole pipeline.
	dp := snap.DataPlane()
	if dp == nil || len(dp.Nodes) != len(fab.Devices) {
		t.Fatal("truncated snapshot failed to build a data plane")
	}
	snap.UndefinedReferences() // must not panic on the partial model
}

// TestChaosOscillationPartialResult covers the non-convergence path: the
// paper's Figure 1b network under the lockstep schedule oscillates, and
// the run must stop with Converged=false, a populated cycle report, a
// non-convergence diagnostic, and a usable partial data plane.
func TestChaosOscillationPartialResult(t *testing.T) {
	r := dataplane.RunContext(context.Background(), testnet.Figure1b(),
		dataplane.Options{Schedule: dataplane.ScheduleLockstep, MaxIterations: 100})
	if r.Converged {
		t.Fatal("lockstep on Figure 1b should not converge")
	}
	if !r.Oscillation || r.Cycle == nil {
		t.Fatalf("want a detected oscillation with cycle report; warnings: %v", r.Warnings)
	}
	if r.Cycle.Protocol == "" || r.Cycle.RepeatIteration <= r.Cycle.FirstIteration {
		t.Errorf("cycle report not populated: %+v", r.Cycle)
	}
	if !diag.Has(r.Diags, diag.KindNonConvergence) {
		t.Errorf("want a non-convergence diagnostic, got %s", diag.Summary(r.Diags))
	}
	// The partial result holds one state of the cycle and stays usable.
	for _, name := range []string{"border1", "border2", "ext1", "ext2"} {
		ns := r.Nodes[name]
		if ns == nil || ns.DefaultVRF() == nil || ns.DefaultVRF().Main == nil {
			t.Fatalf("partial result unusable: node %s has no RIB", name)
		}
	}
}

// TestChaosBudgetExhaustion sets a BDD node budget far below what the
// analysis needs and asserts the question aborts with a "Budget exceeded"
// diagnostic instead of growing without bound — and that non-symbolic
// questions on the same snapshot keep working.
func TestChaosBudgetExhaustion(t *testing.T) {
	fab := netgen.Fabric(netgen.FabricParams{
		Name: "bx", Spines: 2, Pods: 1, AggPerPod: 2, TorPerPod: 2, HostNetsPerTor: 1, Multipath: true})
	snap := core.LoadGeneratedWith(pipeline.Disabled(), fab)
	snap.SetBDDNodeBudget(64)

	if vs := snap.MultipathConsistency(); len(vs) != 0 {
		t.Errorf("budget-tripped question should return no violations, got %d", len(vs))
	}
	ds := diag.Filter(snap.Diags(), diag.KindBudget)
	if len(ds) == 0 {
		t.Fatalf("want a budget diagnostic, got %s", diag.Summary(snap.Diags()))
	}
	if !strings.Contains(ds[0].Message, "Budget exceeded") {
		t.Errorf("budget diagnostic message = %q, want it to say Budget exceeded", ds[0].Message)
	}
	if ds[0].Stage != diag.StageQuestion {
		t.Errorf("budget trip attributed to stage %s, want %s", ds[0].Stage, diag.StageQuestion)
	}
	// Concrete-domain questions are not budget-bound and still answer.
	if len(snap.BGPSessionStatus()) == 0 {
		t.Error("non-symbolic questions should survive a BDD budget trip")
	}
}

// TestCancelFabricDeadline is the acceptance check for cancellation
// promptness: a 204-device fabric run under a short deadline — slowed
// further by injected per-device sleeps so the deadline always lands
// mid-simulation — must return within 1s of the deadline, report
// cancellation, and leak no goroutines.
func TestCancelFabricDeadline(t *testing.T) {
	inj := faults.New().Enable("dataplane", "*", faults.Rule{Kind: faults.Sleep, Sleep: 2 * time.Millisecond})
	defer faults.Activate(inj)()

	fab := netgen.Fabric(netgen.FabricParams{
		Name: "cx", Spines: 4, Pods: 10, AggPerPod: 2, TorPerPod: 18, HostNetsPerTor: 1, Multipath: true})
	if got := len(fab.Devices); got != 204 {
		t.Fatalf("fabric has %d devices, want 204", got)
	}

	before := runtime.NumGoroutine()
	const deadline = 150 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()

	start := time.Now()
	snap := core.LoadGeneratedWithContext(ctx, pipeline.New(pipeline.Config{}), fab)
	dp := snap.DataPlane()
	elapsed := time.Since(start)

	t.Logf("cancelled 204-device run returned in %v (deadline %v)", elapsed, deadline)
	if elapsed > deadline+time.Second {
		t.Fatalf("run took %v, want within 1s of the %v deadline", elapsed, deadline)
	}
	if dp == nil {
		t.Fatal("cancelled run should still return a partial result")
	}
	if !snap.Cancelled() {
		t.Errorf("snapshot should report cancellation; diags: %s", diag.Summary(snap.Diags()))
	}
	if !diag.Has(snap.Diags(), diag.KindCancelled) {
		t.Errorf("want a cancelled diagnostic, got %s", diag.Summary(snap.Diags()))
	}

	// Worker pools must wind down: allow the schedulers a moment to retire
	// in-flight goroutines, then compare against the pre-run count.
	settle := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(settle) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
