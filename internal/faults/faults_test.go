package faults

import (
	"errors"
	"testing"
	"time"
)

func TestFireInactiveIsNoop(t *testing.T) {
	Fire("parse", "dev") // no active injector: must not panic
}

func TestPanicRuleAndWildcard(t *testing.T) {
	inj := New().Enable("parse", "leaf1", Rule{Kind: Panic})
	defer Activate(inj)()

	Fire("parse", "leaf2") // different device: no-op
	Fire("fib", "leaf1")   // different stage: no-op

	func() {
		defer func() {
			v := recover()
			pv, ok := v.(PanicValue)
			if !ok {
				t.Fatalf("recovered %v (%T), want PanicValue", v, v)
			}
			if pv.Stage != "parse" || pv.Device != "leaf1" {
				t.Fatalf("bad panic value %+v", pv)
			}
		}()
		Fire("parse", "leaf1")
	}()

	if h := inj.Hits(); h["parse/leaf1"] != 1 || len(h) != 1 {
		t.Fatalf("hits = %v", h)
	}

	wild := New().Enable("dataplane", "*", Rule{Kind: Panic, Count: 1})
	defer Activate(wild)()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("wildcard rule did not fire")
			}
		}()
		Fire("dataplane", "anything")
	}()
	Fire("dataplane", "anything") // count exhausted: no-op
	if h := wild.Hits(); h["dataplane/anything"] != 1 {
		t.Fatalf("wildcard hits = %v", h)
	}
}

func TestSleepRule(t *testing.T) {
	inj := New().Enable("analysis", "d", Rule{Kind: Sleep, Sleep: 30 * time.Millisecond})
	defer Activate(inj)()
	start := time.Now()
	Fire("analysis", "d")
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("sleep rule returned after %v", d)
	}
}

func TestErrorRule(t *testing.T) {
	if err := FireErr("cluster-heartbeat", "m1"); err != nil {
		t.Fatalf("inactive FireErr returned %v", err)
	}
	inj := New().Enable("cluster-heartbeat", "m1", Rule{Kind: Error, Count: 2})
	defer Activate(inj)()

	if err := FireErr("cluster-heartbeat", "m2"); err != nil {
		t.Fatalf("other device got error %v", err)
	}
	err := FireErr("cluster-heartbeat", "m1")
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Stage != "cluster-heartbeat" || ie.Device != "m1" {
		t.Fatalf("FireErr = %v, want InjectedError at cluster-heartbeat/m1", err)
	}
	// An Error rule at a plain Fire point is inert but still consumes a
	// firing, so count-bounded drops behave identically at both hook styles.
	Fire("cluster-heartbeat", "m1")
	if err := FireErr("cluster-heartbeat", "m1"); err != nil {
		t.Fatalf("count-exhausted rule still fired: %v", err)
	}
	if h := inj.Hits(); h["cluster-heartbeat/m1"] != 2 {
		t.Fatalf("hits = %v", h)
	}
}

func TestFireErrPanicAndSleepKinds(t *testing.T) {
	inj := New().
		Enable("cluster-forward", "m1", Rule{Kind: Panic}).
		Enable("cluster-forward", "m2", Rule{Kind: Sleep, Sleep: 30 * time.Millisecond})
	defer Activate(inj)()
	func() {
		defer func() {
			if _, ok := recover().(PanicValue); !ok {
				t.Fatal("panic rule did not panic at FireErr point")
			}
		}()
		FireErr("cluster-forward", "m1")
	}()
	start := time.Now()
	if err := FireErr("cluster-forward", "m2"); err != nil {
		t.Fatalf("sleep rule returned error %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("sleep rule returned after %v", d)
	}
}

func TestParseSpec(t *testing.T) {
	inj, err := ParseSpec("parse:leaf1=panic, dataplane:*=sleep:50ms:2 ,fib:s2=panic:3,cluster-heartbeat:m2=error:1")
	if err != nil {
		t.Fatal(err)
	}
	if got := inj.Describe(); got != "cluster-heartbeat/m2=error,dataplane/*=sleep,fib/s2=panic,parse/leaf1=panic" {
		t.Fatalf("Describe = %q", got)
	}
	for _, bad := range []string{
		"nodelimiter", "onlystage=panic", "parse:x=explode",
		"parse:x=sleep", "parse:x=sleep:abc", "parse:x=panic:x", "parse:x=panic:1:2",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	if _, err := ParseSpec(""); err != nil {
		t.Fatalf("empty spec rejected: %v", err)
	}
}
