package faults

import (
	"testing"
	"time"
)

func TestFireInactiveIsNoop(t *testing.T) {
	Fire("parse", "dev") // no active injector: must not panic
}

func TestPanicRuleAndWildcard(t *testing.T) {
	inj := New().Enable("parse", "leaf1", Rule{Kind: Panic})
	defer Activate(inj)()

	Fire("parse", "leaf2") // different device: no-op
	Fire("fib", "leaf1")   // different stage: no-op

	func() {
		defer func() {
			v := recover()
			pv, ok := v.(PanicValue)
			if !ok {
				t.Fatalf("recovered %v (%T), want PanicValue", v, v)
			}
			if pv.Stage != "parse" || pv.Device != "leaf1" {
				t.Fatalf("bad panic value %+v", pv)
			}
		}()
		Fire("parse", "leaf1")
	}()

	if h := inj.Hits(); h["parse/leaf1"] != 1 || len(h) != 1 {
		t.Fatalf("hits = %v", h)
	}

	wild := New().Enable("dataplane", "*", Rule{Kind: Panic, Count: 1})
	defer Activate(wild)()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("wildcard rule did not fire")
			}
		}()
		Fire("dataplane", "anything")
	}()
	Fire("dataplane", "anything") // count exhausted: no-op
	if h := wild.Hits(); h["dataplane/anything"] != 1 {
		t.Fatalf("wildcard hits = %v", h)
	}
}

func TestSleepRule(t *testing.T) {
	inj := New().Enable("analysis", "d", Rule{Kind: Sleep, Sleep: 30 * time.Millisecond})
	defer Activate(inj)()
	start := time.Now()
	Fire("analysis", "d")
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("sleep rule returned after %v", d)
	}
}

func TestParseSpec(t *testing.T) {
	inj, err := ParseSpec("parse:leaf1=panic, dataplane:*=sleep:50ms:2 ,fib:s2=panic:3")
	if err != nil {
		t.Fatal(err)
	}
	if got := inj.Describe(); got != "dataplane/*=sleep,fib/s2=panic,parse/leaf1=panic" {
		t.Fatalf("Describe = %q", got)
	}
	for _, bad := range []string{
		"nodelimiter", "onlystage=panic", "parse:x=explode",
		"parse:x=sleep", "parse:x=sleep:abc", "parse:x=panic:x", "parse:x=panic:1:2",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	if _, err := ParseSpec(""); err != nil {
		t.Fatalf("empty spec rejected: %v", err)
	}
}
