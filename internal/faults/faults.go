// Package faults is a deterministic fault-injection harness for the
// engine's failure-containment layer. Production code calls Fire at named
// injection points (stage + device); when no injector is active the call
// is a single atomic load, so the points cost nothing in normal runs.
// Tests — and operators, via the -faults flag on cmd/batfish — activate
// an Injector whose rules decide which points misbehave and how.
//
// Rules are keyed by stage and device ("*" matches any device), and every
// firing is counted, so chaos tests can assert both that a fault was
// actually exercised and that the engine degraded instead of dying.
package faults

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the behavior of an injection rule.
type Kind int

// Fault kinds.
const (
	// Panic panics at the injection point, exercising the recovery and
	// quarantine paths.
	Panic Kind = iota
	// Sleep blocks the injection point for the rule's duration,
	// exercising deadlines and cancellation promptness.
	Sleep
	// Error makes FireErr points return an injected error — the shape of
	// a dropped heartbeat, a partitioned peer, or a refused connection.
	// Fire points (which have no error return) treat an Error rule as a
	// no-op, so one spec can cover both hook styles safely.
	Error
)

func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Sleep:
		return "sleep"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Rule is one injection behavior at a (stage, device) point.
type Rule struct {
	Kind  Kind
	Sleep time.Duration // Sleep kind only
	// Count limits how many times the rule fires; 0 means unlimited.
	Count int
}

// PanicValue is what injected panics carry, so recovery paths (and tests)
// can tell an injected fault from a real bug.
type PanicValue struct {
	Stage  string
	Device string
}

func (p PanicValue) String() string {
	return fmt.Sprintf("injected fault at %s/%s", p.Stage, p.Device)
}

// InjectedError is what FireErr points return for Error rules, so callers
// (and tests) can tell an injected partition from a real network failure.
type InjectedError struct {
	Stage  string
	Device string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("injected error at %s/%s", e.Stage, e.Device)
}

// Injector holds a set of rules. The zero value has no rules; use New.
type Injector struct {
	mu    sync.Mutex
	rules map[string]*ruleState
	hits  map[string]int
}

type ruleState struct {
	rule  Rule
	fired int
}

// New returns an empty Injector.
func New() *Injector {
	return &Injector{rules: make(map[string]*ruleState), hits: make(map[string]int)}
}

func key(stage, device string) string { return stage + "/" + device }

// Enable installs a rule at stage/device. Device "*" matches any device.
func (i *Injector) Enable(stage, device string, r Rule) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules[key(stage, device)] = &ruleState{rule: r}
	return i
}

// Hits returns a copy of the per-point firing counters (keyed
// "stage/device" with the concrete device that fired, not "*").
func (i *Injector) Hits() map[string]int {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[string]int, len(i.hits))
	for k, v := range i.hits {
		out[k] = v
	}
	return out
}

// lookup finds the applicable rule and consumes one firing.
func (i *Injector) lookup(stage, device string) (Rule, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	st, ok := i.rules[key(stage, device)]
	if !ok {
		st, ok = i.rules[key(stage, "*")]
	}
	if !ok {
		return Rule{}, false
	}
	if st.rule.Count > 0 && st.fired >= st.rule.Count {
		return Rule{}, false
	}
	st.fired++
	i.hits[key(stage, device)]++
	return st.rule, true
}

// fire executes the applicable rule, if any. Error rules are inert here:
// a point with no error return has no channel to surface one.
func (i *Injector) fire(stage, device string) {
	r, ok := i.lookup(stage, device)
	if !ok {
		return
	}
	switch r.Kind {
	case Panic:
		panic(PanicValue{Stage: stage, Device: device})
	case Sleep:
		time.Sleep(r.Sleep)
	}
}

// fireErr executes the applicable rule at an error-returning point.
func (i *Injector) fireErr(stage, device string) error {
	r, ok := i.lookup(stage, device)
	if !ok {
		return nil
	}
	switch r.Kind {
	case Panic:
		panic(PanicValue{Stage: stage, Device: device})
	case Sleep:
		time.Sleep(r.Sleep)
	case Error:
		return &InjectedError{Stage: stage, Device: device}
	}
	return nil
}

// active is the process-wide injector consulted by Fire; nil (the normal
// state) makes every injection point a no-op.
var active atomic.Pointer[Injector]

// Activate installs i as the process-wide injector and returns a restore
// function (tests: defer Activate(inj)()). Only one injector is active at
// a time; chaos tests therefore must not run in parallel with each other.
func Activate(i *Injector) (restore func()) {
	prev := active.Swap(i)
	return func() { active.Store(prev) }
}

// Fire is the injection point hook called from production code. With no
// active injector it is a single atomic load.
func Fire(stage, device string) {
	if i := active.Load(); i != nil {
		i.fire(stage, device)
	}
}

// FireErr is the injection point hook for code paths that can fail with
// an error — dropped heartbeats, partitioned forwards. Error rules return
// an *InjectedError; panic and sleep rules behave as at Fire points.
func FireErr(stage, device string) error {
	if i := active.Load(); i != nil {
		return i.fireErr(stage, device)
	}
	return nil
}

// ParseSpec builds an Injector from a -faults flag value. The grammar is
// a comma-separated list of point=behavior entries:
//
//	parse:leaf1=panic,dataplane:*=sleep:100ms,fib:spine2=panic:1
//
// point is stage:device (device may be "*"); behavior is "panic",
// "error", or "sleep:<duration>", optionally suffixed ":<count>" to bound
// firings. "error" only bites at FireErr points (cluster heartbeats and
// forwards); plain Fire points ignore it.
func ParseSpec(spec string) (*Injector, error) {
	inj := New()
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		pt, behavior, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("faults: entry %q lacks '='", entry)
		}
		stage, device, ok := strings.Cut(pt, ":")
		if !ok || stage == "" || device == "" {
			return nil, fmt.Errorf("faults: point %q is not stage:device", pt)
		}
		parts := strings.Split(behavior, ":")
		var r Rule
		switch parts[0] {
		case "panic", "error":
			r.Kind = Panic
			if parts[0] == "error" {
				r.Kind = Error
			}
			if len(parts) > 2 {
				return nil, fmt.Errorf("faults: bad behavior %q", behavior)
			}
			if len(parts) == 2 {
				if _, err := fmt.Sscanf(parts[1], "%d", &r.Count); err != nil {
					return nil, fmt.Errorf("faults: bad count in %q", behavior)
				}
			}
		case "sleep":
			r.Kind = Sleep
			if len(parts) < 2 || len(parts) > 3 {
				return nil, fmt.Errorf("faults: sleep needs a duration in %q", behavior)
			}
			d, err := time.ParseDuration(parts[1])
			if err != nil {
				return nil, fmt.Errorf("faults: bad duration in %q: %v", behavior, err)
			}
			r.Sleep = d
			if len(parts) == 3 {
				if _, err := fmt.Sscanf(parts[2], "%d", &r.Count); err != nil {
					return nil, fmt.Errorf("faults: bad count in %q", behavior)
				}
			}
		default:
			return nil, fmt.Errorf("faults: unknown behavior %q", parts[0])
		}
		inj.Enable(stage, device, r)
	}
	return inj, nil
}

// Describe renders the injector's rules deterministically (CLI echo).
func (i *Injector) Describe() string {
	i.mu.Lock()
	defer i.mu.Unlock()
	keys := make([]string, 0, len(i.rules))
	for k := range i.rules {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%s", k, i.rules[k].rule.Kind))
	}
	return strings.Join(parts, ",")
}
