package acl

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/hdr"
	"repro/internal/ip4"
)

func tcpLine(action Action, src, dst string, dport uint16) Line {
	l := NewLine(action, "")
	l.Protocol = hdr.ProtoTCP
	if src != "" {
		l.SrcIPs = []ip4.Prefix{ip4.MustParsePrefix(src)}
	}
	if dst != "" {
		l.DstIPs = []ip4.Prefix{ip4.MustParsePrefix(dst)}
	}
	if dport != 0 {
		l.DstPorts = []PortRange{{dport, dport}}
	}
	return l
}

func TestEvalFirstMatch(t *testing.T) {
	a := &ACL{Name: "t", Lines: []Line{
		tcpLine(Deny, "10.0.0.0/8", "", 0),
		tcpLine(Permit, "", "", 80),
	}}
	deny := hdr.Packet{Protocol: hdr.ProtoTCP, SrcIP: ip4.MustParseAddr("10.1.1.1"), DstPort: 80}
	if d := a.Eval(deny); d.Action != Deny || d.LineIndex != 0 {
		t.Errorf("first-match violated: %+v", d)
	}
	permit := hdr.Packet{Protocol: hdr.ProtoTCP, SrcIP: ip4.MustParseAddr("11.1.1.1"), DstPort: 80}
	if d := a.Eval(permit); d.Action != Permit || d.LineIndex != 1 {
		t.Errorf("permit line not hit: %+v", d)
	}
}

func TestImplicitDeny(t *testing.T) {
	a := &ACL{Name: "t", Lines: []Line{tcpLine(Permit, "", "", 22)}}
	p := hdr.Packet{Protocol: hdr.ProtoUDP, DstPort: 22}
	if d := a.Eval(p); d.Action != Deny || d.LineIndex != -1 {
		t.Errorf("implicit deny missing: %+v", d)
	}
}

func TestPortMatchRequiresTCPUDP(t *testing.T) {
	l := NewLine(Permit, "")
	l.DstPorts = []PortRange{{80, 80}}
	icmp := hdr.Packet{Protocol: hdr.ProtoICMP, DstPort: 80}
	if l.Matches(icmp) {
		t.Error("port constraint must not match ICMP")
	}
	tcp := hdr.Packet{Protocol: hdr.ProtoTCP, DstPort: 80}
	if !l.Matches(tcp) {
		t.Error("should match TCP port 80")
	}
}

func TestICMPMatch(t *testing.T) {
	l := NewLine(Permit, "")
	l.Protocol = hdr.ProtoICMP
	l.ICMPType = 8
	if !l.Matches(hdr.Packet{Protocol: hdr.ProtoICMP, IcmpType: 8}) {
		t.Error("echo request should match")
	}
	if l.Matches(hdr.Packet{Protocol: hdr.ProtoICMP, IcmpType: 0}) {
		t.Error("echo reply should not match")
	}
}

func TestTCPFlagsMatch(t *testing.T) {
	// "established": ACK or RST set. Modeled as one line with ACK here.
	l := NewLine(Permit, "established")
	l.Protocol = hdr.ProtoTCP
	l.TCPFlags = &TCPFlagsMatch{Mask: hdr.FlagACK, Value: hdr.FlagACK}
	if !l.Matches(hdr.Packet{Protocol: hdr.ProtoTCP, TCPFlags: hdr.FlagACK | hdr.FlagPSH}) {
		t.Error("ACK set should match")
	}
	if l.Matches(hdr.Packet{Protocol: hdr.ProtoTCP, TCPFlags: hdr.FlagSYN}) {
		t.Error("bare SYN should not match established")
	}
}

// randomPacket generates packets biased toward the interesting subspace.
func randomPacket(rnd *rand.Rand) hdr.Packet {
	protos := []uint8{hdr.ProtoTCP, hdr.ProtoUDP, hdr.ProtoICMP, 47}
	return hdr.Packet{
		SrcIP:    ip4.Addr(0x0a000000 | rnd.Uint32()&0x00ffffff),
		DstIP:    ip4.Addr(0x0a000000 | rnd.Uint32()&0x00ffffff),
		SrcPort:  uint16(rnd.Intn(2048)),
		DstPort:  uint16([]int{22, 80, 443, 179, 0, 1024}[rnd.Intn(6)]),
		Protocol: protos[rnd.Intn(len(protos))],
		IcmpType: uint8(rnd.Intn(16)),
		IcmpCode: uint8(rnd.Intn(4)),
		TCPFlags: uint8(rnd.Intn(256)),
	}
}

func randomACL(rnd *rand.Rand, lines int) *ACL {
	a := &ACL{Name: "rand"}
	for i := 0; i < lines; i++ {
		l := NewLine(Action(rnd.Intn(2)), "")
		if rnd.Intn(2) == 0 {
			l.Protocol = int([]uint8{hdr.ProtoTCP, hdr.ProtoUDP, hdr.ProtoICMP}[rnd.Intn(3)])
		}
		if rnd.Intn(2) == 0 {
			l.SrcIPs = []ip4.Prefix{{Addr: ip4.Addr(0x0a000000 | rnd.Uint32()&0xffffff), Len: uint8(8 + rnd.Intn(25))}}
		}
		if rnd.Intn(2) == 0 {
			l.DstIPs = []ip4.Prefix{{Addr: ip4.Addr(0x0a000000 | rnd.Uint32()&0xffffff), Len: uint8(8 + rnd.Intn(25))}}
		}
		if rnd.Intn(3) == 0 {
			p := uint16([]int{22, 80, 443, 179}[rnd.Intn(4)])
			l.DstPorts = []PortRange{{p, p}}
		}
		if rnd.Intn(4) == 0 {
			l.SrcPorts = []PortRange{{0, 1023}}
		}
		a.Lines = append(a.Lines, l)
	}
	return a
}

// TestCompileMatchesEval is the differential test between the symbolic and
// concrete ACL engines (the paper's §4.3.2 idea applied to filters).
func TestCompileMatchesEval(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	e := hdr.NewEnc(0)
	for trial := 0; trial < 30; trial++ {
		a := randomACL(rnd, 1+rnd.Intn(8))
		c := Compile(e, a)
		for i := 0; i < 200; i++ {
			p := randomPacket(rnd)
			concrete := a.Eval(p).Action == Permit
			symbolic := e.F.And(c.Permit, e.PacketBDD(p)) != bdd.False
			if concrete != symbolic {
				t.Fatalf("trial %d: packet %v: concrete=%v symbolic=%v\nACL: %+v",
					trial, p, concrete, symbolic, a)
			}
		}
	}
}

func TestPerLineDisjointAndComplete(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	e := hdr.NewEnc(0)
	for trial := 0; trial < 10; trial++ {
		a := randomACL(rnd, 6)
		c := Compile(e, a)
		union := bdd.False
		for i, pl := range c.PerLine {
			if e.F.And(pl, union) != bdd.False {
				t.Fatalf("line %d overlaps earlier effective sets", i)
			}
			union = e.F.Or(union, pl)
		}
		// Every matching packet is covered by exactly one line.
		for i := 0; i < 100; i++ {
			p := randomPacket(rnd)
			d := a.Eval(p)
			pb := e.PacketBDD(p)
			if d.LineIndex >= 0 {
				if d.LineIndex >= len(c.PerLine) || e.F.And(c.PerLine[d.LineIndex], pb) == bdd.False {
					t.Fatalf("line attribution mismatch for %v: eval says %d", p, d.LineIndex)
				}
			} else if e.F.And(union, pb) != bdd.False {
				t.Fatalf("implicit-deny packet %v covered by a line set", p)
			}
		}
	}
}

func TestUnreachableLines(t *testing.T) {
	e := hdr.NewEnc(0)
	a := &ACL{Name: "shadow", Lines: []Line{
		tcpLine(Permit, "10.0.0.0/8", "", 0),
		tcpLine(Deny, "10.1.0.0/16", "", 0),    // shadowed by line 0
		tcpLine(Permit, "10.2.0.0/16", "", 80), // shadowed by line 0
		tcpLine(Permit, "11.0.0.0/8", "", 0),   // reachable
	}}
	got := UnreachableLines(e, a)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("UnreachableLines = %v, want [1 2]", got)
	}
}

func TestEquivalent(t *testing.T) {
	e := hdr.NewEnc(0)
	a := &ACL{Name: "a", Lines: []Line{
		tcpLine(Permit, "10.0.0.0/9", "", 0),
		tcpLine(Permit, "10.128.0.0/9", "", 0),
	}}
	b := &ACL{Name: "b", Lines: []Line{tcpLine(Permit, "10.0.0.0/8", "", 0)}}
	if eq, _ := Equivalent(e, a, b); !eq {
		t.Error("split prefixes should be equivalent to supernet")
	}
	c := &ACL{Name: "c", Lines: []Line{tcpLine(Permit, "10.0.0.0/8", "", 443)}}
	eq, witness := Equivalent(e, a, c)
	if eq {
		t.Fatal("should differ")
	}
	// Witness must actually distinguish them.
	da, dc := a.Eval(witness), c.Eval(witness)
	if da.Action == dc.Action {
		t.Errorf("witness %v does not distinguish: %v vs %v", witness, da, dc)
	}
}

func TestMatchingLine(t *testing.T) {
	e := hdr.NewEnc(0)
	a := &ACL{Name: "t", Lines: []Line{
		tcpLine(Deny, "10.0.0.0/8", "", 22),
		tcpLine(Permit, "", "", 0),
	}}
	c := Compile(e, a)
	probe := e.PacketBDD(hdr.Packet{Protocol: hdr.ProtoTCP, SrcIP: ip4.MustParseAddr("10.5.5.5"), DstPort: 22})
	if got := c.MatchingLine(e, probe); got != 0 {
		t.Errorf("MatchingLine = %d, want 0", got)
	}
}

func TestEmptyACLDeniesAll(t *testing.T) {
	e := hdr.NewEnc(0)
	a := &ACL{Name: "empty"}
	c := Compile(e, a)
	if c.Permit != bdd.False {
		t.Error("empty ACL must permit nothing")
	}
	if d := a.Eval(hdr.Packet{Protocol: hdr.ProtoTCP}); d.Action != Deny {
		t.Error("empty ACL eval must deny")
	}
}

func TestLineString(t *testing.T) {
	l := tcpLine(Deny, "10.0.0.0/8", "10.1.0.0/16", 443)
	if l.String() == "" {
		t.Error("empty line string")
	}
}
