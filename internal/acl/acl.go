// Package acl models access control lists: ordered match/action rule lists
// over packet headers. It provides both engines the paper requires —
// concrete evaluation (used by the traceroute engine, §4.3.2) and symbolic
// compilation to BDDs (used by the reachability engine, §4.2) — so the two
// can be differentially tested against each other.
package acl

import (
	"fmt"
	"strings"

	"repro/internal/bdd"
	"repro/internal/hdr"
	"repro/internal/ip4"
)

// Action is the disposition of a matching line.
type Action uint8

// Line actions.
const (
	Permit Action = iota
	Deny
)

func (a Action) String() string {
	if a == Permit {
		return "permit"
	}
	return "deny"
}

// PortRange is an inclusive TCP/UDP port range. The zero value (0, 0)
// matches only port 0; use AnyPort for "any".
type PortRange struct {
	Lo, Hi uint16
}

// AnyPort matches all ports.
var AnyPort = PortRange{0, 65535}

// Contains reports whether p is within the range.
func (r PortRange) Contains(p uint16) bool { return p >= r.Lo && p <= r.Hi }

// Line is one ACL entry. Nil/zero match fields mean "any". IP constraints
// are prefixes (wildcard masks in vendor configs are normalized to prefixes
// by the parsers; non-contiguous wildcards are rejected at parse time).
type Line struct {
	Action   Action
	Name     string // line text or sequence label, for traces
	Protocol int    // -1 = any, else IP protocol number
	SrcIPs   []ip4.Prefix
	DstIPs   []ip4.Prefix
	SrcPorts []PortRange // empty = any; only checked for TCP/UDP
	DstPorts []PortRange
	ICMPType int // -1 = any
	ICMPCode int // -1 = any
	TCPFlags *TCPFlagsMatch
}

// TCPFlagsMatch constrains TCP flag bits: bits in Mask must equal the
// corresponding bits in Value. "established" is Mask=ACK|RST, Value≠0
// handled as two lines by parsers (ACK set, or RST set).
type TCPFlagsMatch struct {
	Mask, Value uint8
}

// NewLine returns a Line matching any packet with the given action.
func NewLine(action Action, name string) Line {
	return Line{Action: action, Name: name, Protocol: -1, ICMPType: -1, ICMPCode: -1}
}

// ACL is a named, ordered list of lines with an implicit deny at the end
// (the universal convention the paper's devices share).
type ACL struct {
	Name  string
	Lines []Line
}

// Disposition is the result of evaluating an ACL against a packet.
type Disposition struct {
	Action    Action
	LineIndex int    // -1 for the implicit deny
	LineName  string // annotation for explanations (§4.4.3)
}

// Eval evaluates the ACL against a concrete packet, first-match semantics.
func (a *ACL) Eval(p hdr.Packet) Disposition {
	for i := range a.Lines {
		if a.Lines[i].Matches(p) {
			return Disposition{Action: a.Lines[i].Action, LineIndex: i, LineName: a.Lines[i].Name}
		}
	}
	return Disposition{Action: Deny, LineIndex: -1, LineName: "implicit deny"}
}

// Matches reports whether the line matches the packet.
func (l *Line) Matches(p hdr.Packet) bool {
	if l.Protocol >= 0 && int(p.Protocol) != l.Protocol {
		return false
	}
	if !anyPrefix(l.SrcIPs, p.SrcIP) || !anyPrefix(l.DstIPs, p.DstIP) {
		return false
	}
	if len(l.SrcPorts) > 0 {
		if p.Protocol != hdr.ProtoTCP && p.Protocol != hdr.ProtoUDP {
			return false
		}
		if !anyPort(l.SrcPorts, p.SrcPort) {
			return false
		}
	}
	if len(l.DstPorts) > 0 {
		if p.Protocol != hdr.ProtoTCP && p.Protocol != hdr.ProtoUDP {
			return false
		}
		if !anyPort(l.DstPorts, p.DstPort) {
			return false
		}
	}
	if l.ICMPType >= 0 && (p.Protocol != hdr.ProtoICMP || int(p.IcmpType) != l.ICMPType) {
		return false
	}
	if l.ICMPCode >= 0 && (p.Protocol != hdr.ProtoICMP || int(p.IcmpCode) != l.ICMPCode) {
		return false
	}
	if l.TCPFlags != nil {
		if p.Protocol != hdr.ProtoTCP || p.TCPFlags&l.TCPFlags.Mask != l.TCPFlags.Value {
			return false
		}
	}
	return true
}

func anyPrefix(ps []ip4.Prefix, a ip4.Addr) bool {
	if len(ps) == 0 {
		return true
	}
	for _, p := range ps {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

func anyPort(rs []PortRange, p uint16) bool {
	for _, r := range rs {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// LineBDD compiles a single line's match condition to a packet-set BDD.
func LineBDD(e *hdr.Enc, l *Line) bdd.Ref {
	r := bdd.True
	f := e.F
	if l.Protocol >= 0 {
		r = f.And(r, e.FieldEq(hdr.Protocol, uint32(l.Protocol)))
	}
	r = f.And(r, prefixesBDD(e, hdr.SrcIP, l.SrcIPs))
	r = f.And(r, prefixesBDD(e, hdr.DstIP, l.DstIPs))
	if len(l.SrcPorts) > 0 {
		r = f.And(r, f.And(tcpOrUDP(e), portsBDD(e, hdr.SrcPort, l.SrcPorts)))
	}
	if len(l.DstPorts) > 0 {
		r = f.And(r, f.And(tcpOrUDP(e), portsBDD(e, hdr.DstPort, l.DstPorts)))
	}
	if l.ICMPType >= 0 {
		r = f.And(r, f.And(e.FieldEq(hdr.Protocol, hdr.ProtoICMP), e.FieldEq(hdr.IcmpType, uint32(l.ICMPType))))
	}
	if l.ICMPCode >= 0 {
		r = f.And(r, f.And(e.FieldEq(hdr.Protocol, hdr.ProtoICMP), e.FieldEq(hdr.IcmpCode, uint32(l.ICMPCode))))
	}
	if l.TCPFlags != nil {
		r = f.And(r, e.FieldEq(hdr.Protocol, hdr.ProtoTCP))
		for b := 0; b < 8; b++ {
			bit := uint8(1) << (7 - b)
			if l.TCPFlags.Mask&bit != 0 {
				v := e.F.Var(e.L.Var(hdr.TCPFlags, b))
				if l.TCPFlags.Value&bit != 0 {
					r = f.And(r, v)
				} else {
					r = f.And(r, f.Not(v))
				}
			}
		}
	}
	return r
}

func tcpOrUDP(e *hdr.Enc) bdd.Ref {
	return e.F.Or(e.FieldEq(hdr.Protocol, hdr.ProtoTCP), e.FieldEq(hdr.Protocol, hdr.ProtoUDP))
}

func prefixesBDD(e *hdr.Enc, f hdr.Field, ps []ip4.Prefix) bdd.Ref {
	if len(ps) == 0 {
		return bdd.True
	}
	r := bdd.False
	for _, p := range ps {
		r = e.F.Or(r, e.Prefix(f, p))
	}
	return r
}

func portsBDD(e *hdr.Enc, f hdr.Field, rs []PortRange) bdd.Ref {
	r := bdd.False
	for _, pr := range rs {
		r = e.F.Or(r, e.FieldRange(f, uint32(pr.Lo), uint32(pr.Hi)))
	}
	return r
}

// Compiled is an ACL compiled to BDDs: the permitted packet set, plus the
// exact packet set matched by each line (for explanations).
type Compiled struct {
	Permit  bdd.Ref   // packets the ACL permits
	PerLine []bdd.Ref // packets that match line i (and no earlier line)
}

// Compile translates the ACL to BDDs with first-match semantics: each
// line's effective set is its match set minus everything matched earlier.
func Compile(e *hdr.Enc, a *ACL) Compiled {
	f := e.F
	permit := bdd.False
	remaining := bdd.True // packets not yet matched
	perLine := make([]bdd.Ref, len(a.Lines))
	for i := range a.Lines {
		m := LineBDD(e, &a.Lines[i])
		eff := f.And(m, remaining)
		perLine[i] = eff
		if a.Lines[i].Action == Permit {
			permit = f.Or(permit, eff)
		}
		remaining = f.Diff(remaining, m)
		if remaining == bdd.False {
			break
		}
	}
	return Compiled{Permit: permit, PerLine: perLine}
}

// MatchingLine returns the index of the line whose effective set contains
// the packet set probe (useful for annotating examples), or -1 if the
// implicit deny applies.
func (c Compiled) MatchingLine(e *hdr.Enc, probe bdd.Ref) int {
	for i, pl := range c.PerLine {
		if e.F.And(pl, probe) != bdd.False {
			return i
		}
	}
	return -1
}

// UnreachableLines returns the indices of lines that can never match
// because earlier lines shadow them completely — the ACL-refactoring
// analysis of paper §5.3.
func UnreachableLines(e *hdr.Enc, a *ACL) []int {
	c := Compile(e, a)
	var out []int
	for i, pl := range c.PerLine {
		if pl == bdd.False {
			out = append(out, i)
		}
	}
	return out
}

// Equivalent reports whether two ACLs permit exactly the same packet set,
// and if not returns a packet witnessing the difference.
func Equivalent(e *hdr.Enc, a, b *ACL) (bool, hdr.Packet) {
	ca, cb := Compile(e, a), Compile(e, b)
	diff := e.F.Xor(ca.Permit, cb.Permit)
	if diff == bdd.False {
		return true, hdr.Packet{}
	}
	p, _ := e.PickPacket(diff,
		e.FieldEq(hdr.Protocol, hdr.ProtoTCP),
		e.FieldGE(hdr.SrcPort, 1024))
	return false, p
}

func (l Line) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", l.Action)
	if l.Protocol >= 0 {
		fmt.Fprintf(&b, " proto=%d", l.Protocol)
	}
	if len(l.SrcIPs) > 0 {
		fmt.Fprintf(&b, " src=%v", l.SrcIPs)
	}
	if len(l.DstIPs) > 0 {
		fmt.Fprintf(&b, " dst=%v", l.DstIPs)
	}
	if len(l.SrcPorts) > 0 {
		fmt.Fprintf(&b, " sport=%v", l.SrcPorts)
	}
	if len(l.DstPorts) > 0 {
		fmt.Fprintf(&b, " dport=%v", l.DstPorts)
	}
	return b.String()
}
