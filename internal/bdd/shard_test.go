package bdd

import "testing"

// evalRef evaluates r under a total assignment (index = variable).
func evalRef(f *Factory, r Ref, assign []bool) bool {
	for r >= 2 {
		n := f.nodes[r]
		if assign[n.level] {
			r = n.high
		} else {
			r = n.low
		}
	}
	return r == True
}

// buildSample constructs a nontrivial function over 6 variables:
// (x0 ∧ x1) ∨ (¬x2 ∧ x3) ⊕ (x4 ∨ x5).
func buildSample(f *Factory) Ref {
	a := f.And(f.Var(0), f.Var(1))
	b := f.And(f.NVar(2), f.Var(3))
	c := f.Or(f.Var(4), f.Var(5))
	return f.Xor(f.Or(a, b), c)
}

// TestMigratorCrossShardRenumbering forces the destination factory into a
// different node numbering before migrating, so every migrated Ref must be
// renumbered (a Ref copied verbatim across shards would denote a different
// function). Semantics are then checked exhaustively.
func TestMigratorCrossShardRenumbering(t *testing.T) {
	const nvars = 6
	src := NewFactory(nvars)
	r := buildSample(src)

	// Pre-populate dst with unrelated structure in a *different creation
	// order*, so node ids diverge from src's from the start.
	dst := NewFactory(nvars)
	junk := dst.Or(dst.Var(5), dst.And(dst.Var(4), dst.NVar(3)))
	if junk == False {
		t.Fatal("junk construction failed")
	}

	m := NewMigrator(src, dst)
	got := m.Migrate(r)

	if got == r {
		t.Errorf("migrated ref %d equals source ref — numbering was not forced apart", got)
	}
	// Exhaustive semantic equality over all 2^6 assignments.
	for bits := 0; bits < 1<<nvars; bits++ {
		assign := make([]bool, nvars)
		for v := 0; v < nvars; v++ {
			assign[v] = bits&(1<<v) != 0
		}
		if evalRef(src, r, assign) != evalRef(dst, got, assign) {
			t.Fatalf("semantics diverge at assignment %06b", bits)
		}
	}
	if src.SatCount(r) != dst.SatCount(got) {
		t.Errorf("SatCount diverges: src %v dst %v", src.SatCount(r), dst.SatCount(got))
	}
	if src.NodeCount(r) != dst.NodeCount(got) {
		t.Errorf("structure size diverges: src %d dst %d", src.NodeCount(r), dst.NodeCount(got))
	}
}

// TestMigratorMemoBatching checks the batched-rendezvous property: roots
// sharing structure cost one insertion per distinct node, repeat
// migrations are free, and results are canonical in the destination.
func TestMigratorMemoBatching(t *testing.T) {
	src := NewFactory(8)
	shared := src.And(src.Var(0), src.Or(src.Var(1), src.Var(2)))
	roots := []Ref{
		shared,
		src.Or(shared, src.Var(3)),
		src.And(shared, src.NVar(4)),
		shared, // duplicate root
	}

	dst := NewFactory(8)
	m := NewMigrator(src, dst)
	out := m.MigrateAll(roots)

	if out[0] != out[3] {
		t.Errorf("duplicate roots migrated to different refs: %d vs %d", out[0], out[3])
	}
	work := m.MemoSize()
	// Re-migrating the same batch must do zero new structural work.
	out2 := m.MigrateAll(roots)
	if m.MemoSize() != work {
		t.Errorf("repeat migration grew the memo: %d -> %d", work, m.MemoSize())
	}
	for i := range out {
		if out[i] != out2[i] {
			t.Errorf("root %d not stable across batches: %d vs %d", i, out[i], out2[i])
		}
	}
	// Canonicity in dst: rebuilding the function natively yields the same ref.
	native := dst.And(dst.Var(0), dst.Or(dst.Var(1), dst.Var(2)))
	if native != out[0] {
		t.Errorf("migrated ref %d is not canonical in destination (native %d)", out[0], native)
	}
}

func TestMigratorRejectsMismatchedFactories(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched variable counts")
		}
	}()
	NewMigrator(NewFactory(4), NewFactory(5))
}
