// Package bdd implements reduced ordered binary decision diagrams (BDDs).
//
// Batfish's data-plane verification engine represents sets of packets and
// packet transformations as BDDs (paper §4.2.2). This package is a
// from-scratch implementation of the facilities that engine needs:
//
//   - a hash-consed unique table so BDDs are canonical for a fixed variable
//     order, enabling constant-time equality and identity-keyed caches;
//   - the standard logical operations (AND, OR, NOT, XOR, DIFF, ITE) with
//     per-operation memoization caches;
//   - existential quantification and variable renaming;
//   - RelProd, the fused AND + ∃-quantify + rename operation used to push a
//     packet set through a NAT transformation relation in one pass
//     (paper §4.2.3, "we implemented an optimized BDD operation to execute
//     these three steps simultaneously");
//   - model counting and model extraction (used for example selection).
//
// A Factory owns all nodes; Refs from different factories must not be mixed.
// Factories are not safe for concurrent use; analyses that run in parallel
// each build their own factory.
//
// Panic policy: this package panics only on violated library invariants —
// an invalid variable count, a variable index out of range, or a
// non-order-preserving Replace renaming. These are caller bugs, never
// reachable from user configuration input, and are deliberately kept as
// panics (the failure-containment layer in internal/core recovers them at
// stage boundaries as a backstop). The one recoverable panic is
// BudgetError, raised when an explicitly configured node budget is
// exceeded; see SetNodeBudget.
package bdd

import (
	"fmt"
	"math"
)

// Ref identifies a BDD node within a Factory. The terminals are False (0)
// and True (1). Refs are canonical: two Refs from the same Factory are equal
// iff they represent the same boolean function.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

// node is one decision node: if variable "level" is 0 follow low, else high.
// Terminals use level = terminalLevel so that min(level, ...) recursions
// treat them as below all variables.
type node struct {
	level     int32
	low, high Ref
}

const terminalLevel = int32(1) << 30

// operation codes for the binary apply cache.
const (
	opAnd int32 = iota
	opOr
	opXor
	opDiff
	opNot
	opExists
	opAndExists
	opReplace
	opIte
	opSatCount
	opRestrict
)

type cacheEntry struct {
	a, b, c Ref
	op      int32
	res     Ref
	ok      bool
}

// Factory allocates and operates on BDD nodes over a fixed number of
// variables. Variable i is at level i; there is no dynamic reordering
// (Batfish likewise fixes a domain-specific order up front, §4.2.2).
type Factory struct {
	nvars int

	nodes []node

	// unique is an open-addressing hash table of node indices keyed by
	// (level, low, high).
	unique     []Ref
	uniqueMask uint32

	cache     []cacheEntry
	cacheMask uint32

	// varsets holds interned sorted variable lists for quantification.
	varsets   [][]int32
	varsetIDs map[string]int32

	// perms holds interned variable renamings.
	perms   [][]int32
	permIDs map[string]int32

	satCache map[Ref]float64

	opCount uint64 // statistics: recursive operation applications

	// budget bounds the node table (0 = unlimited); see SetNodeBudget.
	budget int
}

// BudgetError is the panic value raised when the factory's node budget is
// exceeded. Callers that set a budget recover it at a stage boundary and
// convert it into a "Budget exceeded" diagnostic with a partial result —
// turning would-be OOMs into contained failures.
type BudgetError struct{ Limit int }

func (e BudgetError) Error() string {
	return fmt.Sprintf("bdd: node budget %d exceeded", e.Limit)
}

// IsBudget marks the error as a resource-budget trip for panic
// classification (see internal/diag).
func (e BudgetError) IsBudget() bool { return true }

// SetNodeBudget bounds the total number of nodes the factory may
// allocate; 0 removes the bound. Exceeding the budget panics with
// BudgetError, the only way to unwind the deep operation recursion;
// the factory remains usable (existing Refs stay valid) after the caller
// recovers and either raises or removes the budget.
func (f *Factory) SetNodeBudget(n int) { f.budget = n }

// NodeBudget returns the current node budget (0 = unlimited).
func (f *Factory) NodeBudget() int { return f.budget }

// NewFactory returns a Factory over nvars boolean variables.
func NewFactory(nvars int) *Factory {
	if nvars < 0 || nvars >= int(terminalLevel) {
		panic(fmt.Sprintf("bdd: invalid variable count %d", nvars))
	}
	f := &Factory{nvars: nvars}
	f.nodes = make([]node, 2, 1024)
	f.nodes[False] = node{level: terminalLevel}
	f.nodes[True] = node{level: terminalLevel}
	f.initUnique(1 << 13)
	f.initCache(1 << 14)
	f.varsetIDs = make(map[string]int32)
	f.permIDs = make(map[string]int32)
	f.satCache = make(map[Ref]float64)
	return f
}

// NumVars returns the number of variables the factory was created with.
func (f *Factory) NumVars() int { return f.nvars }

// Size returns the total number of allocated nodes, including terminals.
func (f *Factory) Size() int { return len(f.nodes) }

// NodeCount returns the number of distinct nodes reachable from r,
// excluding terminals. It is the standard "BDD size" measure.
func (f *Factory) NodeCount(r Ref) int {
	seen := make(map[Ref]struct{})
	var walk func(Ref)
	walk = func(n Ref) {
		if n < 2 {
			return
		}
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		walk(f.nodes[n].low)
		walk(f.nodes[n].high)
	}
	walk(r)
	return len(seen)
}

// OpCount returns the cumulative number of recursive operation steps,
// a machine-independent work measure used by benchmarks.
func (f *Factory) OpCount() uint64 { return f.opCount }

func (f *Factory) initUnique(size int) {
	f.unique = make([]Ref, size)
	for i := range f.unique {
		f.unique[i] = -1
	}
	f.uniqueMask = uint32(size - 1)
	for i := 2; i < len(f.nodes); i++ {
		f.uniqueInsert(Ref(i))
	}
}

func (f *Factory) initCache(size int) {
	f.cache = make([]cacheEntry, size)
	f.cacheMask = uint32(size - 1)
}

func hash3(a, b, c int32) uint32 {
	h := uint32(a)*0x9e3779b1 ^ uint32(b)*0x85ebca6b ^ uint32(c)*0xc2b2ae35
	h ^= h >> 15
	h *= 0x27d4eb2f
	h ^= h >> 13
	return h
}

func (f *Factory) uniqueInsert(id Ref) {
	n := f.nodes[id]
	h := hash3(n.level, int32(n.low), int32(n.high)) & f.uniqueMask
	for f.unique[h] != -1 {
		h = (h + 1) & f.uniqueMask
	}
	f.unique[h] = id
}

// mk returns the canonical node (level, low, high), applying the two BDD
// reduction rules: redundant-test elimination and subgraph sharing.
func (f *Factory) mk(level int32, low, high Ref) Ref {
	if low == high {
		return low
	}
	h := hash3(level, int32(low), int32(high)) & f.uniqueMask
	for {
		id := f.unique[h]
		if id == -1 {
			break
		}
		n := f.nodes[id]
		if n.level == level && n.low == low && n.high == high {
			return id
		}
		h = (h + 1) & f.uniqueMask
	}
	if f.budget > 0 && len(f.nodes) >= f.budget {
		panic(BudgetError{Limit: f.budget})
	}
	id := Ref(len(f.nodes))
	f.nodes = append(f.nodes, node{level: level, low: low, high: high})
	f.unique[h] = id
	// Grow the unique table (and caches) when load exceeds 3/4.
	if uint32(len(f.nodes)) > f.uniqueMask-f.uniqueMask/4 {
		f.initUnique(len(f.unique) * 2)
		if len(f.cache) < len(f.unique) {
			f.initCache(len(f.cache) * 2)
		}
	}
	return id
}

// Var returns the BDD for "variable v is 1".
func (f *Factory) Var(v int) Ref {
	f.checkVar(v)
	return f.mk(int32(v), False, True)
}

// NVar returns the BDD for "variable v is 0".
func (f *Factory) NVar(v int) Ref {
	f.checkVar(v)
	return f.mk(int32(v), True, False)
}

func (f *Factory) checkVar(v int) {
	if v < 0 || v >= f.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, f.nvars))
	}
}

// Level returns the variable tested at the root of r, or a value >= NumVars
// for terminals.
func (f *Factory) Level(r Ref) int { return int(f.nodes[r].level) }

// Low returns the low (variable=0) child of r.
func (f *Factory) Low(r Ref) Ref { return f.nodes[r].low }

// High returns the high (variable=1) child of r.
func (f *Factory) High(r Ref) Ref { return f.nodes[r].high }

func (f *Factory) cacheLookup(op int32, a, b, c Ref) (Ref, bool) {
	e := &f.cache[hash3(int32(a)^op<<24, int32(b), int32(c))&f.cacheMask]
	if e.ok && e.op == op && e.a == a && e.b == b && e.c == c {
		return e.res, true
	}
	return 0, false
}

func (f *Factory) cacheStore(op int32, a, b, c, res Ref) {
	e := &f.cache[hash3(int32(a)^op<<24, int32(b), int32(c))&f.cacheMask]
	*e = cacheEntry{a: a, b: b, c: c, op: op, res: res, ok: true}
}

// Not returns the complement of a.
func (f *Factory) Not(a Ref) Ref {
	switch a {
	case False:
		return True
	case True:
		return False
	}
	if r, ok := f.cacheLookup(opNot, a, 0, 0); ok {
		return r
	}
	f.opCount++
	n := f.nodes[a]
	res := f.mk(n.level, f.Not(n.low), f.Not(n.high))
	f.cacheStore(opNot, a, 0, 0, res)
	return res
}

// And returns a ∧ b (set intersection).
func (f *Factory) And(a, b Ref) Ref { return f.apply(opAnd, a, b) }

// Or returns a ∨ b (set union).
func (f *Factory) Or(a, b Ref) Ref { return f.apply(opOr, a, b) }

// Xor returns a ⊕ b (symmetric difference).
func (f *Factory) Xor(a, b Ref) Ref { return f.apply(opXor, a, b) }

// Diff returns a ∧ ¬b (set difference).
func (f *Factory) Diff(a, b Ref) Ref { return f.apply(opDiff, a, b) }

// Implies reports whether a ⇒ b, i.e. the packet set a is contained in b.
func (f *Factory) Implies(a, b Ref) bool { return f.Diff(a, b) == False }

// AndN returns the conjunction of all arguments (True for none).
func (f *Factory) AndN(xs ...Ref) Ref {
	r := True
	for _, x := range xs {
		r = f.And(r, x)
	}
	return r
}

// OrN returns the disjunction of all arguments (False for none).
func (f *Factory) OrN(xs ...Ref) Ref {
	r := False
	for _, x := range xs {
		r = f.Or(r, x)
	}
	return r
}

func (f *Factory) apply(op int32, a, b Ref) Ref {
	switch op {
	case opAnd:
		if a == b {
			return a
		}
		if a == False || b == False {
			return False
		}
		if a == True {
			return b
		}
		if b == True {
			return a
		}
		if a > b { // commutative: normalize for cache hits
			a, b = b, a
		}
	case opOr:
		if a == b {
			return a
		}
		if a == True || b == True {
			return True
		}
		if a == False {
			return b
		}
		if b == False {
			return a
		}
		if a > b {
			a, b = b, a
		}
	case opXor:
		if a == b {
			return False
		}
		if a == False {
			return b
		}
		if b == False {
			return a
		}
		if a == True {
			return f.Not(b)
		}
		if b == True {
			return f.Not(a)
		}
		if a > b {
			a, b = b, a
		}
	case opDiff:
		if a == False || b == True || a == b {
			return False
		}
		if b == False {
			return a
		}
	}
	if r, ok := f.cacheLookup(op, a, b, 0); ok {
		return r
	}
	f.opCount++
	na, nb := f.nodes[a], f.nodes[b]
	var level int32
	var a0, a1, b0, b1 Ref
	switch {
	case na.level == nb.level:
		level, a0, a1, b0, b1 = na.level, na.low, na.high, nb.low, nb.high
	case na.level < nb.level:
		level, a0, a1, b0, b1 = na.level, na.low, na.high, b, b
	default:
		level, a0, a1, b0, b1 = nb.level, a, a, nb.low, nb.high
	}
	res := f.mk(level, f.apply(op, a0, b0), f.apply(op, a1, b1))
	f.cacheStore(op, a, b, 0, res)
	return res
}

// ITE returns if-then-else: (c ∧ t) ∨ (¬c ∧ e).
func (f *Factory) ITE(c, t, e Ref) Ref {
	switch {
	case c == True:
		return t
	case c == False:
		return e
	case t == e:
		return t
	case t == True && e == False:
		return c
	case t == False && e == True:
		return f.Not(c)
	}
	if r, ok := f.cacheLookup(opIte, c, t, e); ok {
		return r
	}
	f.opCount++
	level := minLevel(f.nodes[c].level, minLevel(f.nodes[t].level, f.nodes[e].level))
	c0, c1 := f.cofactor(c, level)
	t0, t1 := f.cofactor(t, level)
	e0, e1 := f.cofactor(e, level)
	res := f.mk(level, f.ITE(c0, t0, e0), f.ITE(c1, t1, e1))
	f.cacheStore(opIte, c, t, e, res)
	return res
}

func minLevel(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func (f *Factory) cofactor(r Ref, level int32) (Ref, Ref) {
	n := f.nodes[r]
	if n.level == level {
		return n.low, n.high
	}
	return r, r
}

// VarSet interns a set of variables for use with Exists/Forall/AndExists.
type VarSet struct {
	id   int32
	vars []int32
}

// Vars returns the variables in the set, sorted ascending.
func (vs VarSet) Vars() []int32 { return vs.vars }

// Len returns the number of variables in the set.
func (vs VarSet) Len() int { return len(vs.vars) }

// NewVarSet interns the given variables (deduplicated, sorted) as a VarSet.
func (f *Factory) NewVarSet(vars ...int) VarSet {
	sorted := make([]int32, 0, len(vars))
	for _, v := range vars {
		f.checkVar(v)
		sorted = append(sorted, int32(v))
	}
	// insertion sort + dedup (variable sets are small)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	dedup := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	key := string(int32sToBytes(dedup))
	if id, ok := f.varsetIDs[key]; ok {
		return VarSet{id: id, vars: f.varsets[id]}
	}
	id := int32(len(f.varsets))
	f.varsets = append(f.varsets, dedup)
	f.varsetIDs[key] = id
	return VarSet{id: id, vars: dedup}
}

func int32sToBytes(xs []int32) []byte {
	b := make([]byte, 0, len(xs)*4)
	for _, x := range xs {
		b = append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return b
}

// Exists existentially quantifies the variables in vs out of r: the result
// is true for an assignment iff some setting of vs makes r true.
func (f *Factory) Exists(r Ref, vs VarSet) Ref {
	return f.exists(r, vs, 0)
}

// Forall universally quantifies the variables in vs out of r.
func (f *Factory) Forall(r Ref, vs VarSet) Ref {
	return f.Not(f.exists(f.Not(r), vs, 0))
}

func (f *Factory) exists(r Ref, vs VarSet, idx int) Ref {
	if r < 2 {
		return r
	}
	level := f.nodes[r].level
	for idx < len(vs.vars) && vs.vars[idx] < level {
		idx++
	}
	if idx >= len(vs.vars) {
		return r
	}
	// cache key packs the varset id and position into c
	ckey := Ref(int32(vs.id)<<10 | int32(idx))
	if res, ok := f.cacheLookup(opExists, r, ckey, 0); ok {
		return res
	}
	f.opCount++
	n := f.nodes[r]
	var res Ref
	if vs.vars[idx] == level {
		lo := f.exists(n.low, vs, idx+1)
		if lo == True {
			res = True
		} else {
			res = f.Or(lo, f.exists(n.high, vs, idx+1))
		}
	} else {
		res = f.mk(level, f.exists(n.low, vs, idx), f.exists(n.high, vs, idx))
	}
	f.cacheStore(opExists, r, ckey, 0, res)
	return res
}

// Perm interns a variable renaming for use with Replace. The renaming must
// be order-preserving on any BDD it is applied to (Batfish guarantees this
// by interleaving primed and unprimed variables, §4.2.3).
type Perm struct {
	id  int32
	m   []int32 // m[v] = new variable for v; identity elsewhere
	min int32   // smallest v with m[v] != v, for early exit
}

// NewPerm interns a renaming given as pairs {from, to}. Unlisted variables
// map to themselves.
func (f *Factory) NewPerm(pairs map[int]int) Perm {
	m := make([]int32, f.nvars)
	for i := range m {
		m[i] = int32(i)
	}
	min := int32(f.nvars)
	for from, to := range pairs {
		f.checkVar(from)
		f.checkVar(to)
		m[from] = int32(to)
		if int32(from) < min {
			min = int32(from)
		}
	}
	key := string(int32sToBytes(m))
	if id, ok := f.permIDs[key]; ok {
		return Perm{id: id, m: f.perms[id], min: min}
	}
	id := int32(len(f.perms))
	f.perms = append(f.perms, m)
	f.permIDs[key] = id
	return Perm{id: id, m: m, min: min}
}

// Replace renames variables in r according to p. The renaming must be
// order-preserving on the support of r; Replace panics otherwise, since a
// silently misordered BDD would corrupt every downstream operation.
func (f *Factory) Replace(r Ref, p Perm) Ref {
	return f.replace(r, p)
}

func (f *Factory) replace(r Ref, p Perm) Ref {
	if r < 2 {
		return r
	}
	level := f.nodes[r].level
	if level >= int32(len(p.m)) { // terminal guard (should not occur)
		return r
	}
	ckey := Ref(p.id)
	if res, ok := f.cacheLookup(opReplace, r, ckey, 0); ok {
		return res
	}
	f.opCount++
	n := f.nodes[r]
	lo := f.replace(n.low, p)
	hi := f.replace(n.high, p)
	newLevel := p.m[level]
	if lo >= 2 && f.nodes[lo].level <= newLevel || hi >= 2 && f.nodes[hi].level <= newLevel {
		panic("bdd: Replace renaming is not order-preserving on this BDD")
	}
	res := f.mk(newLevel, lo, hi)
	f.cacheStore(opReplace, r, ckey, 0, res)
	return res
}

// AndExists returns ∃vs (a ∧ b) without materializing the conjunction,
// the classical relational-product inner loop.
func (f *Factory) AndExists(a, b Ref, vs VarSet) Ref {
	return f.andExists(a, b, vs, 0)
}

func (f *Factory) andExists(a, b Ref, vs VarSet, idx int) Ref {
	if a == False || b == False {
		return False
	}
	if a == True && b == True {
		return True
	}
	level := minLevel(f.nodes[a].level, f.nodes[b].level)
	for idx < len(vs.vars) && vs.vars[idx] < level {
		idx++
	}
	if idx >= len(vs.vars) {
		return f.And(a, b)
	}
	if a > b {
		a, b = b, a
	}
	ckey := Ref(int32(vs.id)<<10 | int32(idx))
	if res, ok := f.cacheLookup(opAndExists, a, b, ckey); ok {
		return res
	}
	f.opCount++
	a0, a1 := f.cofactor(a, level)
	b0, b1 := f.cofactor(b, level)
	var res Ref
	if vs.vars[idx] == level {
		lo := f.andExists(a0, b0, vs, idx+1)
		if lo == True {
			res = True
		} else {
			res = f.Or(lo, f.andExists(a1, b1, vs, idx+1))
		}
	} else {
		res = f.mk(level, f.andExists(a0, b0, vs, idx), f.andExists(a1, b1, vs, idx))
	}
	f.cacheStore(opAndExists, a, b, ckey, res)
	return res
}

// RelProd pushes the set "in" through the transformation relation rel:
// it computes Replace(∃vs (in ∧ rel), p) as one fused pipeline. vs is the
// set of unprimed (input) variables constrained by rel and p renames rel's
// primed output variables back to unprimed ones. This is the optimized
// NAT-edge operation of paper §4.2.3.
func (f *Factory) RelProd(in, rel Ref, vs VarSet, p Perm) Ref {
	return f.Replace(f.AndExists(in, rel, vs), p)
}

// RelProdNaive is the unfused 3-step version (And, then Exists, then
// Replace), kept as the ablation baseline for benchmarks.
func (f *Factory) RelProdNaive(in, rel Ref, vs VarSet, p Perm) Ref {
	return f.Replace(f.Exists(f.And(in, rel), vs), p)
}

// Restrict returns the cofactor of r with variable v fixed to val.
func (f *Factory) Restrict(r Ref, v int, val bool) Ref {
	f.checkVar(v)
	return f.restrict(r, int32(v), val)
}

func (f *Factory) restrict(r Ref, v int32, val bool) Ref {
	if r < 2 {
		return r
	}
	n := f.nodes[r]
	if n.level > v {
		return r
	}
	if n.level == v {
		if val {
			return n.high
		}
		return n.low
	}
	ckey := Ref(v << 1)
	if val {
		ckey |= 1
	}
	if res, ok := f.cacheLookup(opRestrict, r, ckey, 0); ok {
		return res
	}
	f.opCount++
	res := f.mk(n.level, f.restrict(n.low, v, val), f.restrict(n.high, v, val))
	f.cacheStore(opRestrict, r, ckey, 0, res)
	return res
}

// SwapVars returns r with variables a and b exchanged. Unlike Replace,
// the positions may be arbitrary: the result is rebuilt from the four
// double cofactors, so no order-preservation is required. Batfish needs
// this for return-flow (swapped src/dst) construction in bidirectional
// reachability; a monolithic swap *relation* between distant variable
// blocks would be exponentially large under any fixed order, while a
// sequence of single-pair swaps stays proportional to the set's structure.
func (f *Factory) SwapVars(r Ref, a, b int) Ref {
	if a == b {
		return r
	}
	r00 := f.Restrict(f.Restrict(r, a, false), b, false)
	r01 := f.Restrict(f.Restrict(r, a, false), b, true)
	r10 := f.Restrict(f.Restrict(r, a, true), b, false)
	r11 := f.Restrict(f.Restrict(r, a, true), b, true)
	va, vb := f.Var(a), f.Var(b)
	// result(a=p, b=q) = r(a=q, b=p)
	return f.ITE(va, f.ITE(vb, r11, r01), f.ITE(vb, r10, r00))
}

// SatCount returns the number of satisfying assignments of r over all
// factory variables, as a float64 (counts can exceed 2^63).
func (f *Factory) SatCount(r Ref) float64 {
	if len(f.satCache) > 1<<20 {
		f.satCache = make(map[Ref]float64)
	}
	return f.satCount(r) * math.Pow(2, float64(f.nodes[r].levelOr(int32(f.nvars))))
}

func (n node) levelOr(max int32) int32 {
	if n.level > max {
		return max
	}
	return n.level
}

// satCount returns models of r over variables strictly below r's level.
func (f *Factory) satCount(r Ref) float64 {
	if r == False {
		return 0
	}
	if r == True {
		return 1
	}
	if c, ok := f.satCache[r]; ok {
		return c
	}
	n := f.nodes[r]
	lo := f.satCount(n.low) * math.Pow(2, float64(f.nodes[n.low].levelOr(int32(f.nvars))-n.level-1))
	hi := f.satCount(n.high) * math.Pow(2, float64(f.nodes[n.high].levelOr(int32(f.nvars))-n.level-1))
	c := lo + hi
	f.satCache[r] = c
	return c
}

// Assignment maps variable index to value. Variables not mentioned are
// don't-cares.
type Assignment map[int]bool

// AnySat returns one satisfying assignment of r, or nil if r is False.
// At each node it prefers the low (0) branch, which together with MSB-first
// field encodings yields numerically small, stable witnesses.
func (f *Factory) AnySat(r Ref) Assignment {
	if r == False {
		return nil
	}
	a := make(Assignment)
	for r != True {
		n := f.nodes[r]
		if n.low != False {
			a[int(n.level)] = false
			r = n.low
		} else {
			a[int(n.level)] = true
			r = n.high
		}
	}
	return a
}

// PickPreferring returns a satisfying assignment of r, trying to satisfy as
// many of the preference constraints as possible, in order. Each preference
// that keeps the set nonempty is applied; the rest are skipped. This is the
// example-selection mechanism of paper §4.4.3 ("BDDs help to select positive
// and negative examples quickly by intersecting the answer space with
// preference constraints").
func (f *Factory) PickPreferring(r Ref, prefs ...Ref) Assignment {
	if r == False {
		return nil
	}
	for _, p := range prefs {
		if next := f.And(r, p); next != False {
			r = next
		}
	}
	return f.AnySat(r)
}

// Support returns the set of variables r depends on, sorted ascending.
func (f *Factory) Support(r Ref) []int {
	seen := make(map[Ref]struct{})
	vars := make(map[int]struct{})
	var walk func(Ref)
	walk = func(n Ref) {
		if n < 2 {
			return
		}
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		vars[int(f.nodes[n].level)] = struct{}{}
		walk(f.nodes[n].low)
		walk(f.nodes[n].high)
	}
	walk(r)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ForEachPath invokes fn for every path from r to True, passing the partial
// assignment along the path (variables not mentioned are don't-cares).
// If fn returns false, enumeration stops. The assignment slice is reused
// across calls; callers must copy it to retain it.
func (f *Factory) ForEachPath(r Ref, fn func(assign []int8) bool) {
	assign := make([]int8, f.nvars)
	for i := range assign {
		assign[i] = -1
	}
	f.forEachPath(r, assign, fn)
}

func (f *Factory) forEachPath(r Ref, assign []int8, fn func([]int8) bool) bool {
	if r == False {
		return true
	}
	if r == True {
		return fn(assign)
	}
	n := f.nodes[r]
	assign[n.level] = 0
	if !f.forEachPath(n.low, assign, fn) {
		assign[n.level] = -1
		return false
	}
	assign[n.level] = 1
	if !f.forEachPath(n.high, assign, fn) {
		assign[n.level] = -1
		return false
	}
	assign[n.level] = -1
	return true
}
