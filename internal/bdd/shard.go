package bdd

// Cross-factory migration for sharded BDD execution.
//
// Parallel analyses shard work across per-worker factories because a
// Factory's hash-consed unique table and operation caches are
// unsynchronized (see the package comment). Sharding creates two data
// movement problems:
//
//   - fan-out: every worker needs its own copy of the shared input BDDs
//     (the forwarding graph's edge labels), and
//   - rendezvous: per-worker result BDDs must be rebased into one factory
//     before they can be combined.
//
// A Migrator solves both with one memoized structural copy: each distinct
// node of the source factory is inserted into the destination's unique
// table exactly once, no matter how many roots share it or how many calls
// reference it. Migrating a batch of N roots over a shared subgraph costs
// O(distinct nodes), not O(N * size) — which is what makes batched
// rendezvous cheaper than re-deriving results in the destination factory.

import "fmt"

// Migrator copies BDDs from one factory into another. Both factories must
// have the same variable count (Refs are meaningless across factories;
// only the structure is transported). The memo persists for the life of
// the Migrator, so repeated and overlapping migrations share work; it is
// not safe for concurrent use, and the destination factory must not be
// used concurrently while a migration runs.
type Migrator struct {
	src, dst *Factory
	memo     map[Ref]Ref
}

// NewMigrator returns a migrator from src to dst.
func NewMigrator(src, dst *Factory) *Migrator {
	if src == dst {
		panic("bdd: migrator source and destination are the same factory")
	}
	if src.nvars != dst.nvars {
		panic(fmt.Sprintf("bdd: cannot migrate between factories with %d and %d variables",
			src.nvars, dst.nvars))
	}
	return &Migrator{
		src:  src,
		dst:  dst,
		memo: map[Ref]Ref{False: False, True: True},
	}
}

// Migrate returns the destination-factory Ref denoting the same boolean
// function as the source-factory Ref r. Nodes already migrated (by this
// or any earlier call on the same Migrator) are reused from the memo.
func (m *Migrator) Migrate(r Ref) Ref {
	if v, ok := m.memo[r]; ok {
		return v
	}
	// Depth is bounded by the variable count (levels strictly increase
	// along both child edges), so plain recursion is safe.
	n := m.src.nodes[r]
	lo := m.Migrate(n.low)
	hi := m.Migrate(n.high)
	v := m.dst.mk(n.level, lo, hi)
	m.memo[r] = v
	return v
}

// MigrateAll migrates a batch of roots, sharing the memo across the whole
// batch (and with prior calls). The result slice is parallel to rs.
func (m *Migrator) MigrateAll(rs []Ref) []Ref {
	out := make([]Ref, len(rs))
	for i, r := range rs {
		out[i] = m.Migrate(r)
	}
	return out
}

// MemoSize returns the number of non-terminal source nodes migrated so
// far — the actual structural work done, useful for tests and stats.
func (m *Migrator) MemoSize() int { return len(m.memo) - 2 }
