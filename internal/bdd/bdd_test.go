package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomBDD builds a random BDD over nvars variables from a seed by
// combining random literals with random connectives.
func randomBDD(f *Factory, rnd *rand.Rand, depth int) Ref {
	if depth == 0 {
		switch rnd.Intn(4) {
		case 0:
			return f.Var(rnd.Intn(f.NumVars()))
		case 1:
			return f.NVar(rnd.Intn(f.NumVars()))
		case 2:
			return True
		default:
			return False
		}
	}
	a := randomBDD(f, rnd, depth-1)
	b := randomBDD(f, rnd, depth-1)
	switch rnd.Intn(4) {
	case 0:
		return f.And(a, b)
	case 1:
		return f.Or(a, b)
	case 2:
		return f.Xor(a, b)
	default:
		return f.Diff(a, b)
	}
}

// eval evaluates the boolean function r under a complete assignment.
func eval(f *Factory, r Ref, assign []bool) bool {
	for r >= 2 {
		n := f.nodes[r]
		if assign[n.level] {
			r = n.high
		} else {
			r = n.low
		}
	}
	return r == True
}

func TestTerminals(t *testing.T) {
	f := NewFactory(4)
	if f.And(True, False) != False {
		t.Error("True AND False != False")
	}
	if f.Or(True, False) != True {
		t.Error("True OR False != True")
	}
	if f.Not(True) != False || f.Not(False) != True {
		t.Error("Not on terminals wrong")
	}
	if f.Xor(True, True) != False {
		t.Error("True XOR True != False")
	}
	if f.Diff(True, True) != False {
		t.Error("True DIFF True != False")
	}
}

func TestVarBasics(t *testing.T) {
	f := NewFactory(4)
	x, y := f.Var(0), f.Var(1)
	if f.And(x, f.Not(x)) != False {
		t.Error("x AND NOT x != False")
	}
	if f.Or(x, f.Not(x)) != True {
		t.Error("x OR NOT x != True")
	}
	if f.And(x, y) != f.And(y, x) {
		t.Error("AND not commutative (canonicity broken)")
	}
	if f.NVar(0) != f.Not(f.Var(0)) {
		t.Error("NVar != Not(Var)")
	}
}

func TestCanonicity(t *testing.T) {
	f := NewFactory(6)
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := randomBDD(f, rnd, 4)
		b := randomBDD(f, rnd, 4)
		// a XOR b == False iff a == b (identity check via canonicity)
		if (f.Xor(a, b) == False) != (a == b) {
			t.Fatalf("canonicity violated: xor==False %v but refs %d vs %d", f.Xor(a, b) == False, a, b)
		}
	}
}

func TestDeMorganProperty(t *testing.T) {
	f := NewFactory(8)
	rnd := rand.New(rand.NewSource(2))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomBDD(f, r, 5)
		b := randomBDD(f, r, 5)
		return f.Not(f.And(a, b)) == f.Or(f.Not(a), f.Not(b)) &&
			f.Not(f.Or(a, b)) == f.And(f.Not(a), f.Not(b)) &&
			f.Not(f.Not(a)) == a
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100, Rand: rnd}); err != nil {
		t.Error(err)
	}
}

func TestDistributivityProperty(t *testing.T) {
	f := NewFactory(8)
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomBDD(f, r, 4)
		b := randomBDD(f, r, 4)
		c := randomBDD(f, r, 4)
		return f.And(a, f.Or(b, c)) == f.Or(f.And(a, b), f.And(a, c)) &&
			f.Or(a, f.And(b, c)) == f.And(f.Or(a, b), f.Or(a, c))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSemanticAgreement(t *testing.T) {
	// BDD operations must agree with direct boolean evaluation on all
	// 2^n assignments.
	const n = 5
	f := NewFactory(n)
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		a := randomBDD(f, rnd, 4)
		b := randomBDD(f, rnd, 4)
		and, or, xor, diff, not := f.And(a, b), f.Or(a, b), f.Xor(a, b), f.Diff(a, b), f.Not(a)
		assign := make([]bool, n)
		for m := 0; m < 1<<n; m++ {
			for i := 0; i < n; i++ {
				assign[i] = m&(1<<i) != 0
			}
			va, vb := eval(f, a, assign), eval(f, b, assign)
			if eval(f, and, assign) != (va && vb) {
				t.Fatalf("AND wrong at %05b", m)
			}
			if eval(f, or, assign) != (va || vb) {
				t.Fatalf("OR wrong at %05b", m)
			}
			if eval(f, xor, assign) != (va != vb) {
				t.Fatalf("XOR wrong at %05b", m)
			}
			if eval(f, diff, assign) != (va && !vb) {
				t.Fatalf("DIFF wrong at %05b", m)
			}
			if eval(f, not, assign) != !va {
				t.Fatalf("NOT wrong at %05b", m)
			}
		}
	}
}

func TestITE(t *testing.T) {
	f := NewFactory(6)
	rnd := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		c := randomBDD(f, rnd, 3)
		a := randomBDD(f, rnd, 3)
		b := randomBDD(f, rnd, 3)
		want := f.Or(f.And(c, a), f.And(f.Not(c), b))
		if got := f.ITE(c, a, b); got != want {
			t.Fatalf("ITE mismatch: got %d want %d", got, want)
		}
	}
}

func TestExists(t *testing.T) {
	f := NewFactory(4)
	x0, x1 := f.Var(0), f.Var(1)
	// ∃x0 (x0 ∧ x1) == x1
	if got := f.Exists(f.And(x0, x1), f.NewVarSet(0)); got != x1 {
		t.Errorf("Exists(x0&x1, {x0}) = %d, want x1=%d", got, x1)
	}
	// ∃x0 (x0 ∧ ¬x0) == False
	if got := f.Exists(f.And(x0, f.Not(x0)), f.NewVarSet(0)); got != False {
		t.Errorf("Exists of empty set not False")
	}
	// ∃{x0,x1} (x0 ∧ x1) == True
	if got := f.Exists(f.And(x0, x1), f.NewVarSet(0, 1)); got != True {
		t.Errorf("Exists all vars should be True")
	}
}

func TestExistsSemantics(t *testing.T) {
	const n = 5
	f := NewFactory(n)
	rnd := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		a := randomBDD(f, rnd, 4)
		v := rnd.Intn(n)
		got := f.Exists(a, f.NewVarSet(v))
		// ∃v a == a[v:=0] ∨ a[v:=1], checked pointwise.
		assign := make([]bool, n)
		for m := 0; m < 1<<n; m++ {
			for i := 0; i < n; i++ {
				assign[i] = m&(1<<i) != 0
			}
			a0 := make([]bool, n)
			copy(a0, assign)
			a0[v] = false
			a1 := make([]bool, n)
			copy(a1, assign)
			a1[v] = true
			want := eval(f, a, a0) || eval(f, a, a1)
			if eval(f, got, assign) != want {
				t.Fatalf("Exists semantics wrong (var %d, m=%05b)", v, m)
			}
		}
	}
}

func TestForallDuality(t *testing.T) {
	f := NewFactory(6)
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomBDD(f, r, 4)
		vs := f.NewVarSet(r.Intn(6), r.Intn(6))
		return f.Forall(a, vs) == f.Not(f.Exists(f.Not(a), vs))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReplace(t *testing.T) {
	f := NewFactory(8)
	// shift x0 -> x4, x1 -> x5 (order-preserving)
	p := f.NewPerm(map[int]int{0: 4, 1: 5})
	a := f.And(f.Var(0), f.Not(f.Var(1)))
	want := f.And(f.Var(4), f.Not(f.Var(5)))
	if got := f.Replace(a, p); got != want {
		t.Errorf("Replace shift failed: got %d want %d", got, want)
	}
}

func TestReplaceInterleaved(t *testing.T) {
	// The NAT pattern: primed variables at odd positions renamed to the
	// even unprimed positions — order preserving.
	f := NewFactory(8)
	pairs := map[int]int{1: 0, 3: 2, 5: 4, 7: 6}
	p := f.NewPerm(pairs)
	a := f.AndN(f.Var(1), f.NVar(3), f.Var(7))
	want := f.AndN(f.Var(0), f.NVar(2), f.Var(6))
	if got := f.Replace(a, p); got != want {
		t.Errorf("interleaved replace failed")
	}
}

func TestAndExistsEquivalence(t *testing.T) {
	f := NewFactory(8)
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomBDD(f, r, 4)
		b := randomBDD(f, r, 4)
		vs := f.NewVarSet(r.Intn(8), r.Intn(8), r.Intn(8))
		return f.AndExists(a, b, vs) == f.Exists(f.And(a, b), vs)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRelProdMatchesNaive(t *testing.T) {
	// A transformation relation over interleaved pairs (x even input,
	// x+1 odd output): RelProd must equal the 3-step pipeline.
	const pairs = 4
	f := NewFactory(pairs * 2)
	rnd := rand.New(rand.NewSource(7))
	inputVars := make([]int, pairs)
	renaming := make(map[int]int, pairs)
	for i := 0; i < pairs; i++ {
		inputVars[i] = 2 * i
		renaming[2*i+1] = 2 * i
	}
	vs := f.NewVarSet(inputVars...)
	p := f.NewPerm(renaming)
	for trial := 0; trial < 40; trial++ {
		// relation: output bit = input bit for some pairs, flipped or
		// constant for others.
		rel := True
		for i := 0; i < pairs; i++ {
			in, out := f.Var(2*i), f.Var(2*i+1)
			switch rnd.Intn(3) {
			case 0: // identity
				rel = f.And(rel, f.Not(f.Xor(in, out)))
			case 1: // flip
				rel = f.And(rel, f.Xor(in, out))
			default: // set to 1
				rel = f.And(rel, out)
			}
		}
		in := randomBDD(f, rnd, 3)
		// Restrict input set to even (input) variables only.
		in = f.Exists(in, f.NewVarSet(1, 3, 5, 7))
		got := f.RelProd(in, rel, vs, p)
		want := f.RelProdNaive(in, rel, vs, p)
		if got != want {
			t.Fatalf("RelProd != naive at trial %d", trial)
		}
	}
}

func TestSatCount(t *testing.T) {
	f := NewFactory(10)
	if f.SatCount(True) != 1024 {
		t.Errorf("SatCount(True) = %v, want 1024", f.SatCount(True))
	}
	if f.SatCount(False) != 0 {
		t.Errorf("SatCount(False) = %v, want 0", f.SatCount(False))
	}
	if f.SatCount(f.Var(3)) != 512 {
		t.Errorf("SatCount(x3) = %v, want 512", f.SatCount(f.Var(3)))
	}
	x := f.And(f.Var(0), f.Var(9))
	if f.SatCount(x) != 256 {
		t.Errorf("SatCount(x0&x9) = %v, want 256", f.SatCount(x))
	}
}

func TestSatCountAdditive(t *testing.T) {
	// |a| + |b| == |a∨b| + |a∧b| (inclusion-exclusion)
	f := NewFactory(8)
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomBDD(f, r, 5)
		b := randomBDD(f, r, 5)
		return f.SatCount(a)+f.SatCount(b) == f.SatCount(f.Or(a, b))+f.SatCount(f.And(a, b))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAnySat(t *testing.T) {
	f := NewFactory(6)
	rnd := rand.New(rand.NewSource(8))
	if f.AnySat(False) != nil {
		t.Error("AnySat(False) should be nil")
	}
	for i := 0; i < 100; i++ {
		a := randomBDD(f, rnd, 4)
		if a == False {
			continue
		}
		sat := f.AnySat(a)
		assign := make([]bool, 6)
		for v, val := range sat {
			assign[v] = val
		}
		if !eval(f, a, assign) {
			t.Fatalf("AnySat produced non-model")
		}
	}
}

func TestPickPreferring(t *testing.T) {
	f := NewFactory(4)
	x0, x1 := f.Var(0), f.Var(1)
	set := f.Or(x0, x1)
	// Prefer x1: should pick a model with x1 true.
	sat := f.PickPreferring(set, x1)
	if v, ok := sat[1]; !ok || !v {
		t.Errorf("preference for x1 not honored: %v", sat)
	}
	// Impossible preference is skipped, possible later one still applied.
	sat = f.PickPreferring(x0, f.Not(x0), x1)
	if v, ok := sat[0]; !ok || !v {
		t.Errorf("impossible preference should be skipped: %v", sat)
	}
	if v, ok := sat[1]; !ok || !v {
		t.Errorf("later preference should still apply: %v", sat)
	}
}

func TestSupport(t *testing.T) {
	f := NewFactory(8)
	a := f.AndN(f.Var(1), f.Or(f.Var(3), f.NVar(6)))
	got := f.Support(a)
	want := []int{1, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("Support = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Support = %v, want %v", got, want)
		}
	}
}

func TestNodeCount(t *testing.T) {
	f := NewFactory(4)
	if f.NodeCount(True) != 0 {
		t.Error("NodeCount(True) != 0")
	}
	if f.NodeCount(f.Var(0)) != 1 {
		t.Error("NodeCount(var) != 1")
	}
}

func TestForEachPath(t *testing.T) {
	f := NewFactory(3)
	a := f.Or(f.And(f.Var(0), f.Var(1)), f.NVar(2))
	var paths int
	total := 0.0
	f.ForEachPath(a, func(assign []int8) bool {
		paths++
		free := 0
		for _, v := range assign {
			if v == -1 {
				free++
			}
		}
		total += float64(int(1) << free)
		return true
	})
	if paths == 0 {
		t.Fatal("no paths enumerated")
	}
	if total != f.SatCount(a) {
		t.Errorf("paths cover %v models, SatCount says %v", total, f.SatCount(a))
	}
}

func TestForEachPathEarlyStop(t *testing.T) {
	f := NewFactory(4)
	a := True
	for i := 0; i < 4; i++ {
		a = f.And(a, f.Or(f.Var(i), f.NVar((i+1)%4)))
	}
	count := 0
	f.ForEachPath(a, func([]int8) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop didn't stop: %d calls", count)
	}
}

func TestImplies(t *testing.T) {
	f := NewFactory(4)
	x, y := f.Var(0), f.Var(1)
	if !f.Implies(f.And(x, y), x) {
		t.Error("x&y should imply x")
	}
	if f.Implies(x, f.And(x, y)) {
		t.Error("x should not imply x&y")
	}
}

func TestLargeTableGrowth(t *testing.T) {
	// Force unique-table growth past several doublings.
	f := NewFactory(64)
	r := False
	for i := 0; i < 64; i += 2 {
		r = f.Or(r, f.And(f.Var(i), f.Var(i+1)))
	}
	if r == False || r == True {
		t.Fatal("unexpected terminal")
	}
	// Parity function forces exponential-free but deep structure; just
	// verify satCount consistency after growth.
	if f.SatCount(r)+f.SatCount(f.Not(r)) != math2pow64() {
		t.Error("satcount inconsistent after growth")
	}
}

func math2pow64() float64 {
	v := 1.0
	for i := 0; i < 64; i++ {
		v *= 2
	}
	return v
}

func TestReplaceNonMonotonePanics(t *testing.T) {
	f := NewFactory(4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on order-violating Replace")
		}
	}()
	// Swap 0<->1 on a BDD depending on both: not order-preserving.
	p := f.NewPerm(map[int]int{0: 1, 1: 0})
	f.Replace(f.And(f.Var(0), f.NVar(1)), p)
}

func BenchmarkBDDAnd(b *testing.B) {
	f := NewFactory(64)
	rnd := rand.New(rand.NewSource(9))
	xs := make([]Ref, 100)
	for i := range xs {
		xs[i] = randomBDD(f, rnd, 6)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.And(xs[i%100], xs[(i+37)%100])
	}
}

func TestRestrict(t *testing.T) {
	f := NewFactory(4)
	r := f.Or(f.And(f.Var(0), f.Var(1)), f.NVar(2))
	// Restricting var 0 to true: r becomes x1 OR NOT x2.
	got := f.Restrict(r, 0, true)
	want := f.Or(f.Var(1), f.NVar(2))
	if got != want {
		t.Errorf("Restrict(0,true) wrong")
	}
	// Restricting a variable not in support is identity.
	if f.Restrict(r, 3, true) != r {
		t.Errorf("Restrict on free var should be identity")
	}
}

func TestRestrictSemantics(t *testing.T) {
	const n = 5
	f := NewFactory(n)
	rnd := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		a := randomBDD(f, rnd, 4)
		v := rnd.Intn(n)
		val := rnd.Intn(2) == 1
		got := f.Restrict(a, v, val)
		assign := make([]bool, n)
		for m := 0; m < 1<<n; m++ {
			for i := 0; i < n; i++ {
				assign[i] = m&(1<<i) != 0
			}
			fixed := make([]bool, n)
			copy(fixed, assign)
			fixed[v] = val
			if eval(f, got, assign) != eval(f, a, fixed) {
				t.Fatalf("Restrict semantics wrong at var %d", v)
			}
		}
	}
}

func TestSwapVars(t *testing.T) {
	f := NewFactory(6)
	// f = x0 AND NOT x4; swapping 0 and 4 gives x4 AND NOT x0.
	a := f.And(f.Var(0), f.NVar(4))
	got := f.SwapVars(a, 0, 4)
	want := f.And(f.Var(4), f.NVar(0))
	if got != want {
		t.Errorf("SwapVars wrong")
	}
	if f.SwapVars(a, 2, 2) != a {
		t.Errorf("self swap must be identity")
	}
}

func TestSwapVarsProperties(t *testing.T) {
	f := NewFactory(6)
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomBDD(f, r, 4)
		x, y := r.Intn(6), r.Intn(6)
		s := f.SwapVars(a, x, y)
		// Involution: swapping twice restores the original.
		if f.SwapVars(s, x, y) != a {
			return false
		}
		// Symmetric in arguments.
		return f.SwapVars(a, y, x) == s
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSwapVarsSemantics(t *testing.T) {
	const n = 5
	f := NewFactory(n)
	rnd := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		a := randomBDD(f, rnd, 4)
		x, y := rnd.Intn(n), rnd.Intn(n)
		got := f.SwapVars(a, x, y)
		assign := make([]bool, n)
		for m := 0; m < 1<<n; m++ {
			for i := 0; i < n; i++ {
				assign[i] = m&(1<<i) != 0
			}
			swapped := make([]bool, n)
			copy(swapped, assign)
			swapped[x], swapped[y] = swapped[y], swapped[x]
			if eval(f, got, assign) != eval(f, a, swapped) {
				t.Fatalf("SwapVars semantics wrong (%d<->%d)", x, y)
			}
		}
	}
}
