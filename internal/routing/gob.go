package routing

// Gob support for the interned route-attribute types, so data-plane
// artifacts can persist to the disk cache tier. The interned types wrap a
// single unexported string; encoding round-trips that string verbatim.
// Decoded values compare correctly with == (string equality), though they
// are not re-interned into any Pool — consumers that rely on pointer
// identity of *BGPAttrs only do so during convergence, which persisted
// (post-convergence) results never re-enter.

// GobEncode encodes the packed ASN string.
func (p ASPath) GobEncode() ([]byte, error) { return []byte(p.asns), nil }

// GobDecode restores the packed ASN string.
func (p *ASPath) GobDecode(b []byte) error {
	p.asns = string(b)
	return nil
}

// GobEncode encodes the packed community string.
func (c CommunitySet) GobEncode() ([]byte, error) { return []byte(c.comms), nil }

// GobDecode restores the packed community string.
func (c *CommunitySet) GobDecode(b []byte) error {
	c.comms = string(b)
	return nil
}
