package routing

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/ip4"
)

func TestProtocolAdminDistances(t *testing.T) {
	cases := map[Protocol]uint8{
		Connected: 0, Static: 1, EBGP: 20, OSPF: 110, OSPFE2: 110, IBGP: 200,
	}
	for p, want := range cases {
		if got := p.DefaultAdminDistance(); got != want {
			t.Errorf("%v AD = %d, want %d", p, got, want)
		}
	}
}

func TestASPathIntern(t *testing.T) {
	pool := NewPool()
	a := pool.ASPath(65001, 65002)
	b := pool.ASPath(65001, 65002)
	if a != b {
		t.Error("equal AS paths must intern to equal values")
	}
	if a.Len() != 2 || a.At(0) != 65001 || a.At(1) != 65002 {
		t.Errorf("path content wrong: %v", a)
	}
	if !a.Contains(65002) || a.Contains(65003) {
		t.Error("Contains wrong")
	}
	if a.String() != "65001 65002" {
		t.Errorf("String = %q", a.String())
	}
	empty := pool.ASPath()
	if empty.Len() != 0 || empty.String() != "" {
		t.Error("empty path wrong")
	}
}

func TestPrepend(t *testing.T) {
	pool := NewPool()
	base := pool.ASPath(65002)
	got := pool.Prepend(base, 65001, 3)
	want := pool.ASPath(65001, 65001, 65001, 65002)
	if got != want {
		t.Errorf("Prepend = %v, want %v", got, want)
	}
}

func TestCommunitySetIntern(t *testing.T) {
	pool := NewPool()
	a := pool.CommunitySet(100, 50, 100, 200)
	b := pool.CommunitySet(200, 100, 50)
	if a != b {
		t.Error("community sets must dedupe+sort before interning")
	}
	if a.Len() != 3 || !a.Has(50) || !a.Has(100) || !a.Has(200) || a.Has(75) {
		t.Errorf("set content wrong: %v", a.Values())
	}
}

func TestCommunitySetHasProperty(t *testing.T) {
	pool := NewPool()
	check := func(vals []uint32, probe uint32) bool {
		s := pool.CommunitySet(vals...)
		want := false
		for _, v := range vals {
			if v == probe {
				want = true
			}
		}
		return s.Has(probe) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAddRemoveCommunity(t *testing.T) {
	pool := NewPool()
	s := pool.CommunitySet(1, 2)
	s2 := pool.AddCommunity(s, 3)
	if !s2.Has(3) || s2.Len() != 3 {
		t.Error("AddCommunity failed")
	}
	s3 := pool.RemoveCommunities(s2, func(v uint32) bool { return v == 2 })
	if s3.Has(2) || s3.Len() != 2 {
		t.Error("RemoveCommunities failed")
	}
}

func TestCommunityString(t *testing.T) {
	if CommunityString(65000<<16|100) != "65000:100" {
		t.Errorf("CommunityString wrong: %s", CommunityString(65000<<16|100))
	}
}

func TestAttrsIntern(t *testing.T) {
	pool := NewPool()
	a1 := pool.Attrs(BGPAttrs{LocalPref: 100, ASPath: pool.ASPath(65001)})
	a2 := pool.Attrs(BGPAttrs{LocalPref: 100, ASPath: pool.ASPath(65001)})
	a3 := pool.Attrs(BGPAttrs{LocalPref: 200, ASPath: pool.ASPath(65001)})
	if a1 != a2 {
		t.Error("equal attrs must intern to same pointer")
	}
	if a1 == a3 {
		t.Error("different attrs must not share pointer")
	}
	st := pool.Stats()
	if st.UniqueAttrs != 2 || st.AttrHits != 1 || st.AttrMisses != 2 {
		t.Errorf("stats wrong: %+v", st)
	}
	// Three identical ASPath(65001) calls: one miss, two hits.
	if st.PathHits != 2 || st.PathMisses != 1 {
		t.Errorf("path stats wrong: %+v", st)
	}
}

func pfx(s string) ip4.Prefix { return ip4.MustParsePrefix(s) }

func TestRIBMergeBestAndDelta(t *testing.T) {
	clk := &Clock{}
	r := NewRIB(MainComparator, clk)
	r1 := Route{Prefix: pfx("10.0.0.0/8"), Protocol: OSPF, AD: 110, Metric: 20, NextHop: ip4.MustParseAddr("1.1.1.1")}
	r2 := Route{Prefix: pfx("10.0.0.0/8"), Protocol: Static, AD: 1, NextHop: ip4.MustParseAddr("2.2.2.2")}
	if !r.Merge(r1) {
		t.Error("first merge should change best")
	}
	if !r.Merge(r2) {
		t.Error("better AD should change best")
	}
	best := r.Best(pfx("10.0.0.0/8"))
	if len(best) != 1 || best[0].Protocol != Static {
		t.Errorf("best = %v, want static", best)
	}
	d := r.TakeDelta()
	// Net delta: added ospf, removed ospf, added static — recorded in
	// sequence: ospf added; then static added and ospf removed.
	if len(d.Added) != 2 || len(d.Removed) != 1 {
		t.Errorf("delta = %+v", d)
	}
	if r.PendingDelta() {
		t.Error("delta should be reset after Take")
	}
}

func TestRIBMergeIdempotent(t *testing.T) {
	clk := &Clock{}
	r := NewRIB(MainComparator, clk)
	rt := Route{Prefix: pfx("10.0.0.0/8"), Protocol: Static, AD: 1}
	r.Merge(rt)
	if r.Merge(rt) {
		t.Error("duplicate merge must be a no-op")
	}
	if r.CandidateCount() != 1 {
		t.Error("duplicate created a candidate")
	}
	// Clock of the retained route must be the original (oldest wins).
	if r.Best(rt.Prefix)[0].Clock != 1 {
		t.Errorf("clock rewritten: %d", r.Best(rt.Prefix)[0].Clock)
	}
}

func TestRIBWithdrawRevealsAlternative(t *testing.T) {
	clk := &Clock{}
	r := NewRIB(MainComparator, clk)
	worse := Route{Prefix: pfx("10.0.0.0/8"), Protocol: OSPF, AD: 110, Metric: 5}
	better := Route{Prefix: pfx("10.0.0.0/8"), Protocol: Static, AD: 1}
	r.Merge(worse)
	r.Merge(better)
	r.TakeDelta()
	if !r.Withdraw(better) {
		t.Error("withdrawing best should change best set")
	}
	best := r.Best(pfx("10.0.0.0/8"))
	if len(best) != 1 || best[0].Protocol != OSPF {
		t.Errorf("alternative not promoted: %v", best)
	}
	d := r.TakeDelta()
	if len(d.Added) != 1 || len(d.Removed) != 1 {
		t.Errorf("withdraw delta wrong: %+v", d)
	}
}

func TestRIBECMP(t *testing.T) {
	clk := &Clock{}
	r := NewRIB(OSPFComparator, clk)
	for i := 0; i < 4; i++ {
		r.Merge(Route{Prefix: pfx("10.0.0.0/24"), Protocol: OSPF, AD: 110, Metric: 10,
			NextHop: ip4.Addr(0x01010101 + uint32(i))})
	}
	if got := len(r.Best(pfx("10.0.0.0/24"))); got != 4 {
		t.Errorf("ECMP best set = %d routes, want 4", got)
	}
	// A cheaper route evicts all of them.
	r.Merge(Route{Prefix: pfx("10.0.0.0/24"), Protocol: OSPF, AD: 110, Metric: 5, NextHop: ip4.MustParseAddr("9.9.9.9")})
	if got := len(r.Best(pfx("10.0.0.0/24"))); got != 1 {
		t.Errorf("cheaper route should evict ECMP set, got %d", got)
	}
}

func TestOSPFComparatorTypePreference(t *testing.T) {
	intra := Route{Protocol: OSPF, Metric: 100}
	e2 := Route{Protocol: OSPFE2, Metric: 1}
	if OSPFComparator(intra, e2) <= 0 {
		t.Error("intra-area must beat E2 regardless of cost")
	}
}

func TestRemoveWhere(t *testing.T) {
	clk := &Clock{}
	r := NewRIB(MainComparator, clk)
	p := pfx("10.0.0.0/8")
	r.Merge(Route{Prefix: p, Protocol: EBGP, AD: 20, NextHopNode: "peer1"})
	r.Merge(Route{Prefix: p, Protocol: EBGP, AD: 20, NextHopNode: "peer2", NextHop: 1})
	if !r.RemoveWhere(p, func(rt Route) bool { return rt.NextHopNode == "peer1" }) {
		t.Error("RemoveWhere should report change")
	}
	if r.CandidateCount() != 1 {
		t.Error("candidate not removed")
	}
	if r.RemoveWhere(p, func(rt Route) bool { return rt.NextHopNode == "nobody" }) {
		t.Error("no-op RemoveWhere should return false")
	}
}

func TestLongestMatch(t *testing.T) {
	clk := &Clock{}
	r := NewRIB(MainComparator, clk)
	r.Merge(Route{Prefix: pfx("0.0.0.0/0"), Protocol: Static, AD: 1, NextHopNode: "default"})
	r.Merge(Route{Prefix: pfx("10.0.0.0/8"), Protocol: Static, AD: 1, NextHopNode: "eight"})
	r.Merge(Route{Prefix: pfx("10.1.0.0/16"), Protocol: Static, AD: 1, NextHopNode: "sixteen"})
	cases := map[string]string{
		"10.1.2.3":  "sixteen",
		"10.2.0.1":  "eight",
		"192.0.2.1": "default",
	}
	for addr, want := range cases {
		got := r.LongestMatch(ip4.MustParseAddr(addr))
		if len(got) != 1 || got[0].NextHopNode != want {
			t.Errorf("LongestMatch(%s) = %v, want %s", addr, got, want)
		}
	}
}

func TestStateHashDetectsChange(t *testing.T) {
	clk := &Clock{}
	r := NewRIB(MainComparator, clk)
	h0 := r.StateHash()
	r.Merge(Route{Prefix: pfx("10.0.0.0/8"), Protocol: Static, AD: 1})
	h1 := r.StateHash()
	if h0 == h1 {
		t.Error("hash must change when best set changes")
	}
	// Clock-only differences must NOT change the hash (clock is not
	// identity).
	c2 := &Clock{}
	for i := 0; i < 1000; i++ {
		c2.Next()
	}
	r2 := NewRIB(MainComparator, c2)
	r2.Merge(Route{Prefix: pfx("10.0.0.0/8"), Protocol: Static, AD: 1})
	if r2.StateHash() != h1 {
		t.Error("hash must be clock-independent")
	}
}

func TestDeterministicOrder(t *testing.T) {
	// Best sets must come out in canonical order regardless of merge order.
	mk := func(order []int) []Route {
		clk := &Clock{}
		r := NewRIB(OSPFComparator, clk)
		nhs := []string{"1.1.1.1", "2.2.2.2", "3.3.3.3"}
		for _, i := range order {
			r.Merge(Route{Prefix: pfx("10.0.0.0/24"), Protocol: OSPF, Metric: 7, AD: 110,
				NextHop: ip4.MustParseAddr(nhs[i])})
		}
		return r.AllBest()
	}
	a := mk([]int{0, 1, 2})
	b := mk([]int{2, 0, 1})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("order not canonical: %v vs %v", a[i], b[i])
		}
	}
}

func TestRIBRandomizedInvariants(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	clk := &Clock{}
	r := NewRIB(MainComparator, clk)
	live := map[Key]Route{}
	prefixes := []ip4.Prefix{pfx("10.0.0.0/8"), pfx("10.1.0.0/16"), pfx("0.0.0.0/0")}
	for i := 0; i < 2000; i++ {
		rt := Route{
			Prefix:   prefixes[rnd.Intn(len(prefixes))],
			Protocol: Protocol(rnd.Intn(3)),
			AD:       uint8(rnd.Intn(3)),
			Metric:   uint32(rnd.Intn(4)),
			NextHop:  ip4.Addr(rnd.Intn(5)),
		}
		if rnd.Intn(3) == 0 {
			r.Withdraw(rt)
			delete(live, rt.Key())
		} else {
			r.Merge(rt)
			live[rt.Key()] = rt
		}
	}
	if r.CandidateCount() != len(live) {
		t.Fatalf("candidate count %d, want %d", r.CandidateCount(), len(live))
	}
	// Every best route must be no worse than every live candidate for its
	// prefix.
	for _, p := range r.Prefixes() {
		best := r.Best(p)
		for _, c := range r.Candidates(p) {
			if MainComparator(c, best[0]) > 0 {
				t.Fatalf("candidate %v beats best %v", c, best[0])
			}
		}
	}
}

func TestClockMonotone(t *testing.T) {
	c := &Clock{}
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		n := c.Next()
		if n <= prev {
			t.Fatal("clock not monotonic")
		}
		prev = n
	}
	if c.Now() != prev {
		t.Error("Now != last Next")
	}
}

func TestRouteString(t *testing.T) {
	pool := NewPool()
	r := Route{Prefix: pfx("10.0.0.0/8"), Protocol: EBGP, NextHop: ip4.MustParseAddr("1.2.3.4"),
		AD: 20, Attrs: pool.Attrs(BGPAttrs{LocalPref: 100, ASPath: pool.ASPath(65001)})}
	if r.String() == "" {
		t.Error("empty route string")
	}
	drop := Route{Prefix: pfx("10.0.0.0/8"), Protocol: Static, Drop: true}
	if drop.String() == "" {
		t.Error("empty drop string")
	}
}

func TestPoolConcurrentInterning(t *testing.T) {
	// The sharded pool's contract: concurrent interning from many
	// goroutines yields exactly one canonical value per distinct input.
	pool := NewPool()
	const workers = 8
	const perWorker = 2000
	paths := make([][]ASPath, workers)
	attrs := make([][]*BGPAttrs, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				asn := uint32(65000 + i%50)
				p := pool.ASPath(asn, asn+1)
				cs := pool.CommunitySet(asn<<16|1, asn<<16|2)
				a := pool.Attrs(BGPAttrs{LocalPref: uint32(i % 7), ASPath: p, Communities: cs})
				paths[w] = append(paths[w], p)
				attrs[w] = append(attrs[w], a)
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range paths[0] {
			if paths[w][i] != paths[0][i] {
				t.Fatal("same path interned to different values across goroutines")
			}
			if attrs[w][i] != attrs[0][i] {
				t.Fatal("same attrs interned to different pointers across goroutines")
			}
		}
	}
	st := pool.Stats()
	if st.UniqueASPaths != 50 || st.UniqueCommSets != 50 {
		t.Errorf("unique counts wrong: %+v", st)
	}
	if st.AttrMisses != 50*7 {
		t.Errorf("attr misses = %d, want %d", st.AttrMisses, 50*7)
	}
	if st.AttrHits != workers*perWorker-50*7 {
		t.Errorf("attr hits = %d, want %d", st.AttrHits, workers*perWorker-50*7)
	}
}

func TestInternHitPathDoesNotAllocate(t *testing.T) {
	pool := NewPool()
	pool.ASPath(65001, 65002, 65003)
	pool.CommunitySet(100, 200)
	allocs := testing.AllocsPerRun(200, func() {
		pool.ASPath(65001, 65002, 65003)
	})
	if allocs != 0 {
		t.Errorf("ASPath hit path allocates %.1f objects/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		pool.CommunitySet(100, 200)
	})
	if allocs != 0 {
		t.Errorf("CommunitySet hit path allocates %.1f objects/op, want 0", allocs)
	}
}

func TestRemoveCommunitiesNoMatchReturnsSameSet(t *testing.T) {
	pool := NewPool()
	s := pool.CommunitySet(1, 2, 3)
	out := pool.RemoveCommunities(s, func(uint32) bool { return false })
	if out != s {
		t.Error("no-op removal should return the original interned set")
	}
	allocs := testing.AllocsPerRun(100, func() {
		pool.RemoveCommunities(s, func(v uint32) bool { return v == 2 })
	})
	if allocs != 0 {
		t.Errorf("RemoveCommunities allocates %.1f objects/op, want 0", allocs)
	}
}
