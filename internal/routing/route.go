// Package routing defines routes, RIBs, and the memory-optimization
// machinery of paper §4.1.3: interned routing attributes (AS paths,
// community sets, and the combined 13-property BGP attribute object),
// RIB deltas for the hybrid queue-free convergence scheme, and logical
// clocks for arrival-time tie-breaking (§4.1.2).
package routing

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ip4"
)

// Protocol identifies the routing protocol that produced a route.
type Protocol uint8

// Protocols, ordered roughly by typical administrative preference.
const (
	Connected Protocol = iota
	Local              // interface /32 host routes
	Static
	OSPF   // intra-area
	OSPFIA // inter-area
	OSPFE1 // external type 1
	OSPFE2 // external type 2
	EBGP
	IBGP
	Aggregate
	numProtocols
)

var protoNames = [numProtocols]string{
	"connected", "local", "static", "ospf", "ospfIA", "ospfE1", "ospfE2",
	"bgp", "ibgp", "aggregate",
}

func (p Protocol) String() string {
	if int(p) < len(protoNames) {
		return protoNames[p]
	}
	return fmt.Sprintf("proto(%d)", uint8(p))
}

// DefaultAdminDistance returns the Cisco-style default administrative
// distance for the protocol.
func (p Protocol) DefaultAdminDistance() uint8 {
	switch p {
	case Connected, Local:
		return 0
	case Static:
		return 1
	case EBGP:
		return 20
	case OSPF, OSPFIA, OSPFE1, OSPFE2:
		return 110
	case IBGP:
		return 200
	case Aggregate:
		return 200
	}
	return 255
}

// IsBGP reports whether the protocol is a BGP variant.
func (p Protocol) IsBGP() bool { return p == EBGP || p == IBGP }

// IsOSPF reports whether the protocol is an OSPF variant.
func (p Protocol) IsOSPF() bool {
	return p == OSPF || p == OSPFIA || p == OSPFE1 || p == OSPFE2
}

// Origin is the BGP origin attribute.
type Origin uint8

// BGP origin codes; lower is preferred.
const (
	OriginIGP Origin = iota
	OriginEGP
	OriginIncomplete
)

func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "igp"
	case OriginEGP:
		return "egp"
	}
	return "incomplete"
}

// ASPath is an interned BGP AS path. Compare with ==; construct only
// through a Pool.
type ASPath struct {
	asns string // 4 bytes per ASN, big-endian, so == works
}

// Len returns the number of ASNs in the path.
func (p ASPath) Len() int { return len(p.asns) / 4 }

// At returns the i-th ASN.
func (p ASPath) At(i int) uint32 {
	b := p.asns[i*4:]
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Contains reports whether the path contains asn (the BGP loop check).
func (p ASPath) Contains(asn uint32) bool {
	for i := 0; i < p.Len(); i++ {
		if p.At(i) == asn {
			return true
		}
	}
	return false
}

// String renders the path as space-separated ASNs ("65001 65002"), the
// form AS-path regexes match against.
func (p ASPath) String() string {
	var b strings.Builder
	for i := 0; i < p.Len(); i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", p.At(i))
	}
	return b.String()
}

// CommunitySet is an interned, sorted set of BGP standard communities.
// Compare with ==; construct only through a Pool.
type CommunitySet struct {
	comms string // 4 bytes per community, sorted ascending
}

// Len returns the number of communities.
func (c CommunitySet) Len() int { return len(c.comms) / 4 }

// At returns the i-th community (ascending order).
func (c CommunitySet) At(i int) uint32 {
	b := c.comms[i*4:]
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Has reports whether community v is in the set.
func (c CommunitySet) Has(v uint32) bool {
	lo, hi := 0, c.Len()
	for lo < hi {
		mid := (lo + hi) / 2
		if c.At(mid) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < c.Len() && c.At(lo) == v
}

// Values returns the communities as a fresh slice.
func (c CommunitySet) Values() []uint32 {
	out := make([]uint32, c.Len())
	for i := range out {
		out[i] = c.At(i)
	}
	return out
}

// CommunityString renders a community in new-format "asn:value".
func CommunityString(v uint32) string {
	return fmt.Sprintf("%d:%d", v>>16, v&0xffff)
}

// String renders the set as space-separated "asn:value" pairs.
func (c CommunitySet) String() string {
	parts := make([]string, c.Len())
	for i := range parts {
		parts[i] = CommunityString(c.At(i))
	}
	return strings.Join(parts, " ")
}

// BGPAttrs is the combined attribute object of paper §4.1.3: the 13 BGP
// route properties that typically repeat across many routes, moved into a
// single interned value so each route carries one pointer. "There are
// typically 10x–20x fewer combinations of those properties than routes."
type BGPAttrs struct {
	AdminDistance uint8        // 1
	LocalPref     uint32       // 2
	MED           uint32       // 3
	Weight        uint32       // 4
	Origin        Origin       // 5
	ASPath        ASPath       // 6 (itself interned)
	Communities   CommunitySet // 7 (itself interned)
	OriginatorID  ip4.Addr     // 8
	FromAS        uint32       // 9  neighbor AS the route came from
	ReceivedFrom  ip4.Addr     // 10 neighbor IP
	SrcProtocol   Protocol     // 11 redistribution source
	Tag           uint32       // 12
	IGPMetric     uint32       // 13 IGP cost to the BGP next hop
}

// Route is a single RIB entry. Identity (for delta computation and
// equality) covers every field except Clock, which records logical arrival
// time and participates only in tie-breaking.
type Route struct {
	Prefix       ip4.Prefix
	Protocol     Protocol
	NextHop      ip4.Addr // 0 for connected/local
	NextHopIface string   // set for connected and interface static routes
	NextHopNode  string   // simulation-level: neighbor that sent the route
	Metric       uint32
	AD           uint8
	Tag          uint32
	Area         uint32    // OSPF area the route belongs to (OSPF protocols only)
	Drop         bool      // null route (discard)
	Attrs        *BGPAttrs // interned; nil unless Protocol.IsBGP()

	// Clock is the logical arrival time (§4.1.2): monotonically increasing
	// across RIB merges, used to prefer the oldest equally-good eBGP path
	// like real routers do. Not part of route identity.
	Clock uint64
}

// Key is the identity of a route, excluding Clock. Routes with equal Keys
// are the same route for delta and convergence purposes.
type Key struct {
	Prefix       ip4.Prefix
	Protocol     Protocol
	NextHop      ip4.Addr
	NextHopIface string
	NextHopNode  string
	Metric       uint32
	AD           uint8
	Tag          uint32
	Area         uint32
	Drop         bool
	Attrs        *BGPAttrs
}

// Key returns the identity key of r.
func (r Route) Key() Key {
	return Key{
		Prefix: r.Prefix, Protocol: r.Protocol, NextHop: r.NextHop,
		NextHopIface: r.NextHopIface, NextHopNode: r.NextHopNode,
		Metric: r.Metric, AD: r.AD, Tag: r.Tag, Area: r.Area, Drop: r.Drop,
		Attrs: r.Attrs,
	}
}

func (r Route) String() string {
	s := fmt.Sprintf("%s via %s", r.Prefix, r.Protocol)
	if r.Drop {
		return s + " drop"
	}
	if r.NextHop != 0 {
		s += fmt.Sprintf(" nh=%s", r.NextHop)
	}
	if r.NextHopIface != "" {
		s += fmt.Sprintf(" if=%s", r.NextHopIface)
	}
	s += fmt.Sprintf(" metric=%d ad=%d", r.Metric, r.AD)
	if r.Attrs != nil {
		s += fmt.Sprintf(" lp=%d as=[%s]", r.Attrs.LocalPref, r.Attrs.ASPath)
	}
	return s
}

// Pool interns AS paths, community sets, and BGPAttrs objects, so that
// equality is pointer/value equality and attribute memory is shared across
// routes (paper §4.1.3).
//
// A Pool is safe for concurrent use and layered for scalability:
//
//   - The hot read path is a lock-free direct-mapped cache of canonical
//     pointers (one atomic load + one value compare per hit). Because the
//     sharded table below is the sole producer of canonical pointers,
//     racing writes to a cache slot are benign — any published pointer is
//     correct, slots are only ever overwritten with other canonical
//     pointers.
//   - Misses fall through to a 64-way sharded hash-consed table (one
//     mutex per shard, selected by an FNV-1a hash of the interned bytes),
//     with new attribute objects carved from per-shard arena blocks so a
//     simulation's misses cost one heap allocation per block, not per
//     attribute object.
//   - Hit/miss counters are per-shard and cache-line padded: a single
//     shared counter pair would put one contended line in front of every
//     intern call from every worker.
//
// The simulator owns one Pool per run and all workers share it.
type Pool struct {
	shards [poolShards]poolShard

	// Direct-mapped front caches, indexed by the same hash that selects
	// the shard. Entries are canonical pointers owned by the shard maps.
	attrCache [attrCacheSize]atomic.Pointer[BGPAttrs]
	pathCache [attrCacheSize]atomic.Pointer[ASPath]

	counters [poolShards]poolCounters
}

// poolShards is the number of independently locked shards. A power of two
// so shard selection is a mask of the key hash.
const poolShards = 64

// attrCacheSize is the direct-mapped front-cache size (slots, power of two).
const attrCacheSize = 1 << 13

// attrArenaBlock is how many BGPAttrs one shard arena block holds.
const attrArenaBlock = 128

type poolShard struct {
	mu       sync.Mutex
	asPaths  map[string]*ASPath
	commSets map[string]CommunitySet
	attrs    map[BGPAttrs]*BGPAttrs
	arena    []BGPAttrs // arena-style allocation for interned attrs
}

// poolCounters keeps one shard's hit/miss statistics on its own cache
// line (64-byte pad) so parallel workers never false-share counter words.
type poolCounters struct {
	attrHits atomic.Uint64
	attrMiss atomic.Uint64
	pathHits atomic.Uint64
	pathMiss atomic.Uint64
	_        [4]uint64
}

// NewPool returns an empty intern pool.
func NewPool() *Pool {
	p := &Pool{}
	for i := range p.shards {
		s := &p.shards[i]
		s.asPaths = make(map[string]*ASPath)
		s.commSets = make(map[string]CommunitySet)
		s.attrs = make(map[BGPAttrs]*BGPAttrs)
	}
	return p
}

// FNV-1a, the shard-selection hash.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnv1a(seed uint64, b []byte) uint64 {
	h := seed
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

func fnv1aString(seed uint64, s string) uint64 {
	h := seed
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// encodeU32s writes vals as 4-byte big-endian groups into buf (reused when
// large enough, so short paths/sets stay on the stack).
func encodeU32s(buf []byte, vals []uint32) []byte {
	b := buf
	if len(vals)*4 > cap(b) {
		b = make([]byte, len(vals)*4)
	}
	b = b[:len(vals)*4]
	for i, a := range vals {
		b[i*4] = byte(a >> 24)
		b[i*4+1] = byte(a >> 16)
		b[i*4+2] = byte(a >> 8)
		b[i*4+3] = byte(a)
	}
	return b
}

// ASPath interns the given ASN sequence. The hit path performs no
// allocation and takes no lock: the key bytes live in a stack buffer, the
// direct-mapped cache resolves repeats with one atomic load, and the
// sharded-map fallback uses the compiler's string(b)-in-index-expression
// optimization.
func (p *Pool) ASPath(asns ...uint32) ASPath {
	var buf [64]byte
	b := encodeU32s(buf[:0], asns)
	h := mix64(fnv1a(fnvOffset, b))
	c := &p.counters[h&(poolShards-1)]
	slot := &p.pathCache[(h>>6)&(attrCacheSize-1)]
	if v := slot.Load(); v != nil && v.asns == string(b) {
		c.pathHits.Add(1)
		return *v
	}
	s := &p.shards[h&(poolShards-1)]
	s.mu.Lock()
	if v, ok := s.asPaths[string(b)]; ok {
		s.mu.Unlock()
		c.pathHits.Add(1)
		slot.Store(v)
		return *v
	}
	k := string(b)
	v := &ASPath{asns: k}
	s.asPaths[k] = v
	s.mu.Unlock()
	c.pathMiss.Add(1)
	slot.Store(v)
	return *v
}

// Prepend interns path with asn prepended n times. The ASN scratch list
// lives on the stack for paths of up to 30 hops.
func (p *Pool) Prepend(path ASPath, asn uint32, n int) ASPath {
	var buf [32]uint32
	asns := buf[:0]
	if path.Len()+n > len(buf) {
		asns = make([]uint32, 0, path.Len()+n)
	}
	for i := 0; i < n; i++ {
		asns = append(asns, asn)
	}
	for i := 0; i < path.Len(); i++ {
		asns = append(asns, path.At(i))
	}
	return p.ASPath(asns...)
}

// CommunitySet interns the given communities (deduplicated, sorted). Like
// ASPath, the hit path does not allocate for sets of up to 16 communities.
func (p *Pool) CommunitySet(comms ...uint32) CommunitySet {
	var vbuf [16]uint32
	sorted := vbuf[:0]
	if len(comms) > len(vbuf) {
		sorted = make([]uint32, 0, len(comms))
	}
	sorted = append(sorted, comms...)
	// Insertion sort: sets are tiny and sort.Slice's closure would force
	// the stack buffer to escape, costing an allocation per call.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	dedup := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	var buf [64]byte
	b := encodeU32s(buf[:0], dedup)
	s := &p.shards[fnv1a(fnvOffset, b)&(poolShards-1)]
	s.mu.Lock()
	if v, ok := s.commSets[string(b)]; ok {
		s.mu.Unlock()
		return v
	}
	k := string(b)
	v := CommunitySet{comms: k}
	s.commSets[k] = v
	s.mu.Unlock()
	return v
}

// AddCommunity interns set ∪ {comm}.
func (p *Pool) AddCommunity(set CommunitySet, comm uint32) CommunitySet {
	return p.CommunitySet(append(set.Values(), comm)...)
}

// RemoveCommunities interns the set minus all communities matching pred.
// Single pass over the interned representation (no Values() copies); when
// nothing matches, the original interned set is returned without touching
// the pool.
func (p *Pool) RemoveCommunities(set CommunitySet, pred func(uint32) bool) CommunitySet {
	var buf [16]uint32
	keep := buf[:0]
	n := set.Len()
	if n > len(buf) {
		keep = make([]uint32, 0, n)
	}
	removed := false
	for i := 0; i < n; i++ {
		v := set.At(i)
		if pred(v) {
			removed = true
		} else {
			keep = append(keep, v)
		}
	}
	if !removed {
		return set
	}
	return p.CommunitySet(keep...)
}

// fnv1aWords folds s four bytes at a time (one multiply per word instead
// of per byte) — the intern hot path hashes short interned strings on
// every Attrs call, so hash arithmetic is a measurable slice of route
// processing.
func fnv1aWords(seed uint64, s string) uint64 {
	h := seed
	i := 0
	for ; i+4 <= len(s); i += 4 {
		h ^= uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24
		h *= fnvPrime
	}
	for ; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// attrsHash hashes a BGPAttrs value (interned string fields and scalars)
// for shard and front-cache selection. Scalars are packed into five words
// so the mix costs five multiplies, not one per field.
func attrsHash(a *BGPAttrs) uint64 {
	h := fnv1aWords(fnvOffset, a.ASPath.asns)
	h = fnv1aWords(h, a.Communities.comms)
	for _, x := range [...]uint64{
		uint64(a.LocalPref)<<32 | uint64(a.MED),
		uint64(a.Weight)<<32 | uint64(a.OriginatorID),
		uint64(a.ReceivedFrom)<<32 | uint64(a.FromAS),
		uint64(a.IGPMetric)<<32 | uint64(a.Tag),
		uint64(a.AdminDistance) | uint64(a.Origin)<<8 | uint64(a.SrcProtocol)<<16,
	} {
		h ^= x
		h *= fnvPrime
	}
	return mix64(h)
}

// mix64 is an avalanche finalizer: FNV's multiply only carries differences
// upward, so without this, keys differing in high-order packed fields
// collide in the low bits that pick the shard and the direct-mapped cache
// slot.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	return h
}

// Attrs interns a BGPAttrs value, returning the canonical pointer. The hit
// path is lock-free: one atomic load from the direct-mapped cache plus a
// value compare. The miss path carves the canonical object from the
// shard's arena block and publishes it to the cache.
func (p *Pool) Attrs(a BGPAttrs) *BGPAttrs {
	h := attrsHash(&a)
	c := &p.counters[h&(poolShards-1)]
	slot := &p.attrCache[(h>>6)&(attrCacheSize-1)]
	if v := slot.Load(); v != nil && *v == a {
		c.attrHits.Add(1)
		return v
	}
	s := &p.shards[h&(poolShards-1)]
	s.mu.Lock()
	if v, ok := s.attrs[a]; ok {
		s.mu.Unlock()
		c.attrHits.Add(1)
		slot.Store(v)
		return v
	}
	if len(s.arena) == 0 {
		s.arena = make([]BGPAttrs, attrArenaBlock)
	}
	v := &s.arena[0]
	s.arena = s.arena[1:]
	*v = a
	s.attrs[a] = v
	s.mu.Unlock()
	c.attrMiss.Add(1)
	slot.Store(v)
	return v
}

// Stats reports pool population and hit counts, used by the §4.1.3 memory
// experiment to show the attribute-combination ratio.
type Stats struct {
	UniqueAttrs, UniqueASPaths, UniqueCommSets int
	AttrHits, AttrMisses                       uint64
	PathHits, PathMisses                       uint64
}

// Stats returns current interning statistics, summed across shards.
// CommunitySet interning is uncounted (it sits on the attr fast path).
func (p *Pool) Stats() Stats {
	var st Stats
	for i := range p.counters {
		c := &p.counters[i]
		st.AttrHits += c.attrHits.Load()
		st.AttrMisses += c.attrMiss.Load()
		st.PathHits += c.pathHits.Load()
		st.PathMisses += c.pathMiss.Load()
	}
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		st.UniqueAttrs += len(s.attrs)
		st.UniqueASPaths += len(s.asPaths)
		st.UniqueCommSets += len(s.commSets)
		s.mu.Unlock()
	}
	return st
}
