package routing

import (
	"sort"
	"sync/atomic"

	"repro/internal/ip4"
)

// Clock is the logical clock of paper §4.1.2: every route merged into any
// RIB is stamped with a monotonically increasing arrival time, letting the
// BGP decision process prefer the oldest equally-good path, like routers
// do, which removes pathological re-advertisement loops.
//
// The counter is atomic so that nodes of the same color class can merge in
// parallel; only the relative order of merges *within* one node matters for
// tie-breaking, and each node's merges are sequential.
type Clock struct {
	t atomic.Uint64
}

// Next returns the next timestamp.
func (c *Clock) Next() uint64 { return c.t.Add(1) }

// Now returns the current timestamp without advancing.
func (c *Clock) Now() uint64 { return c.t.Load() }

// Comparator orders candidate routes for the same prefix: positive if a is
// preferred over b, negative if b over a, zero if equally good (ECMP).
type Comparator func(a, b Route) int

// Delta records changes to a RIB's best-route set during one iteration —
// the unit of exchange in the queue-free hybrid scheme of §4.1.3. Receivers
// pull deltas directly from their neighbors' RIBs instead of having routes
// pushed onto per-session queues.
type Delta struct {
	Added   []Route
	Removed []Route
}

// Empty reports whether the delta carries no changes.
func (d Delta) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// Len returns the total number of changes.
func (d Delta) Len() int { return len(d.Added) + len(d.Removed) }

type entry struct {
	candidates []Route
	best       []Route
}

// RIB holds routes for one protocol (or the main RIB), maintaining the
// best-route set per prefix under a Comparator and accumulating a Delta of
// best-set changes.
type RIB struct {
	cmp      Comparator
	clock    *Clock
	entries  map[ip4.Prefix]*entry
	delta    Delta
	nRoutes  int // total candidates, for memory accounting
	maxCands int

	// scratch is the recompute working set. Most merges during convergence
	// do not change the best set, so building the candidate ranking in a
	// reused slice makes the no-change path allocation-free.
	scratch []Route

	// sorted is a cached snapshot of Prefixes() output. Once built it is
	// never mutated (invalidation rebuilds a fresh slice), so callers may
	// keep iterating a returned snapshot across RIB mutations.
	sorted      []ip4.Prefix
	sortedValid bool
}

// NewRIB creates a RIB with the given comparator and logical clock.
// The clock may be shared across RIBs (one per simulated network).
func NewRIB(cmp Comparator, clock *Clock) *RIB {
	return &RIB{cmp: cmp, clock: clock, entries: make(map[ip4.Prefix]*entry)}
}

// Merge adds a candidate route, stamping its Clock. If a candidate with the
// same Key already exists, the merge is a no-op (the existing route keeps
// its original arrival time). Returns true if the best set changed.
func (r *RIB) Merge(rt Route) bool {
	rt.Prefix = rt.Prefix.Canonical()
	e := r.entries[rt.Prefix]
	if e == nil {
		e = &entry{}
		r.entries[rt.Prefix] = e
		r.sortedValid = false
	}
	for i := range e.candidates {
		if sameIdentity(&e.candidates[i], &rt) {
			return false
		}
	}
	rt.Clock = r.clock.Next()
	e.candidates = append(e.candidates, rt)
	r.nRoutes++
	if len(e.candidates) > r.maxCands {
		r.maxCands = len(e.candidates)
	}
	return r.recompute(rt.Prefix, e)
}

// Withdraw removes the candidate with the same Key, if present. Returns
// true if the best set changed.
func (r *RIB) Withdraw(rt Route) bool {
	rt.Prefix = rt.Prefix.Canonical()
	e := r.entries[rt.Prefix]
	if e == nil {
		return false
	}
	for i := range e.candidates {
		if sameIdentity(&e.candidates[i], &rt) {
			e.candidates = append(e.candidates[:i], e.candidates[i+1:]...)
			r.nRoutes--
			return r.recompute(rt.Prefix, e)
		}
	}
	return false
}

// RemoveWhere withdraws all candidates for prefix that satisfy pred —
// the implicit-withdraw step when a neighbor re-advertises a prefix.
// Returns true if the best set changed.
func (r *RIB) RemoveWhere(prefix ip4.Prefix, pred func(Route) bool) bool {
	prefix = prefix.Canonical()
	e := r.entries[prefix]
	if e == nil {
		return false
	}
	kept := e.candidates[:0]
	removed := 0
	for _, c := range e.candidates {
		if pred(c) {
			removed++
		} else {
			kept = append(kept, c)
		}
	}
	if removed == 0 {
		return false
	}
	e.candidates = kept
	r.nRoutes -= removed
	return r.recompute(prefix, e)
}

// recompute rebuilds the best set for prefix and updates the delta.
// It returns true if the best set changed. The ranking is built in the
// RIB's scratch slice so the no-change path — the overwhelmingly common
// outcome once convergence is under way — performs no allocation; a fresh
// exact-size best slice is allocated only when the set actually changes
// (callers may retain previously returned Best slices).
func (r *RIB) recompute(prefix ip4.Prefix, e *entry) bool {
	best := r.scratch[:0]
	for _, c := range e.candidates {
		if len(best) == 0 {
			best = append(best, c)
			continue
		}
		switch d := r.cmp(c, best[0]); {
		case d > 0:
			best = append(best[:0], c)
		case d == 0:
			best = append(best, c)
		}
	}
	// Canonical order for deterministic output and cheap comparison.
	sortRoutes(best)
	r.scratch = best[:0]
	if routesEqual(best, e.best) {
		return false
	}
	old := e.best
	// Record best-set changes in the delta (withdrawn first, then added,
	// matching how a router would announce).
	for i := range old {
		if !containsRoute(best, &old[i]) {
			r.delta.Removed = append(r.delta.Removed, old[i])
		}
	}
	for i := range best {
		if !containsRoute(old, &best[i]) {
			r.delta.Added = append(r.delta.Added, best[i])
		}
	}
	e.best = append([]Route(nil), best...)
	if len(e.candidates) == 0 {
		delete(r.entries, prefix)
		r.sortedValid = false
	}
	return true
}

// routeLess is the canonical best-set order. Total enough for determinism:
// candidates are ranked in per-node merge order, and the insertion sort
// below is stable.
func routeLess(a, b *Route) bool {
	if c := a.Prefix.Compare(b.Prefix); c != 0 {
		return c < 0
	}
	if a.NextHop != b.NextHop {
		return a.NextHop < b.NextHop
	}
	if a.NextHopNode != b.NextHopNode {
		return a.NextHopNode < b.NextHopNode
	}
	if a.NextHopIface != b.NextHopIface {
		return a.NextHopIface < b.NextHopIface
	}
	return a.Protocol < b.Protocol
}

// sortRoutes sorts a best set with a direct insertion sort. Best sets are
// tiny (ECMP width), and sort.Slice's reflective swapper both allocates
// and forces the slice header to escape — measurable on the recompute
// path, which runs once per merge.
func sortRoutes(rs []Route) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && routeLess(&rs[j], &rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// sameIdentity reports whether two routes have equal identity (every field
// except Clock) without materializing Key values: two Key constructions
// per candidate comparison showed up as pure copy overhead (duffcopy) in
// merge-heavy profiles.
func sameIdentity(a, b *Route) bool {
	return a.Prefix == b.Prefix && a.Protocol == b.Protocol &&
		a.NextHop == b.NextHop && a.Metric == b.Metric &&
		a.AD == b.AD && a.Tag == b.Tag && a.Area == b.Area &&
		a.Drop == b.Drop && a.Attrs == b.Attrs &&
		a.NextHopIface == b.NextHopIface && a.NextHopNode == b.NextHopNode
}

func routesEqual(a, b []Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sameIdentity(&a[i], &b[i]) {
			return false
		}
	}
	return true
}

func containsRoute(rs []Route, rt *Route) bool {
	for i := range rs {
		if sameIdentity(&rs[i], rt) {
			return true
		}
	}
	return false
}

// TakeDelta returns the accumulated best-set delta and resets it. The
// simulator calls this once per iteration to rotate current → previous.
func (r *RIB) TakeDelta() Delta {
	d := r.delta
	r.delta = Delta{}
	return d
}

// PendingDelta reports whether changes have accumulated since TakeDelta.
func (r *RIB) PendingDelta() bool { return !r.delta.Empty() }

// Best returns the best-route set for prefix (nil if none).
func (r *RIB) Best(prefix ip4.Prefix) []Route {
	if e := r.entries[prefix.Canonical()]; e != nil {
		return e.best
	}
	return nil
}

// Candidates returns all candidate routes for prefix.
func (r *RIB) Candidates(prefix ip4.Prefix) []Route {
	if e := r.entries[prefix.Canonical()]; e != nil {
		return e.candidates
	}
	return nil
}

// Prefixes returns all prefixes with at least one candidate, sorted. The
// returned slice is a cached snapshot: it must not be modified, but it
// remains valid (as of the time of the call) across subsequent RIB
// mutations — invalidation rebuilds a fresh slice rather than mutating
// the old one.
func (r *RIB) Prefixes() []ip4.Prefix {
	if r.sortedValid {
		return r.sorted
	}
	out := make([]ip4.Prefix, 0, len(r.entries))
	for p := range r.entries {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	r.sorted, r.sortedValid = out, true
	return out
}

// AllBest returns every best route in canonical prefix order.
func (r *RIB) AllBest() []Route {
	var out []Route
	for _, p := range r.Prefixes() {
		out = append(out, r.entries[p].best...)
	}
	return out
}

// LongestMatch returns the best-route set for the longest prefix
// containing a, or nil. RIB lookup is linear in prefix lengths; the FIB
// (package fib) provides the trie used on the forwarding path.
func (r *RIB) LongestMatch(a ip4.Addr) []Route {
	for l := 32; l >= 0; l-- {
		p := ip4.Prefix{Addr: a, Len: uint8(l)}.Canonical()
		if e, ok := r.entries[p]; ok && len(e.best) > 0 {
			return e.best
		}
	}
	return nil
}

// Size returns the number of best routes across all prefixes.
func (r *RIB) Size() int {
	n := 0
	for _, e := range r.entries {
		n += len(e.best)
	}
	return n
}

// CandidateCount returns the total number of candidates held.
func (r *RIB) CandidateCount() int { return r.nRoutes }

// StateHash returns a hash of the best-route sets, used by the simulator
// to detect oscillation (non-convergence, §4.1.2).
func (r *RIB) StateHash() uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	for _, p := range r.Prefixes() {
		mix(uint64(p.Addr)<<8 | uint64(p.Len))
		for _, rt := range r.entries[p].best {
			mix(uint64(rt.NextHop))
			mix(uint64(rt.Protocol)<<32 | uint64(rt.Metric))
			mix(uint64(rt.AD))
			for _, ch := range rt.NextHopNode {
				mix(uint64(ch))
			}
			if rt.Attrs != nil {
				mix(uint64(rt.Attrs.LocalPref)<<16 ^ uint64(rt.Attrs.MED))
				for _, ch := range rt.Attrs.ASPath.asns {
					mix(uint64(ch))
				}
			}
		}
	}
	return h
}

// MainComparator orders routes for the main RIB: lower administrative
// distance wins; within the same protocol, lower metric wins; routes from
// different protocols with equal AD and different metrics are incomparable
// and treated as equally good only if metrics match.
func MainComparator(a, b Route) int {
	if a.AD != b.AD {
		return int(b.AD) - int(a.AD)
	}
	if a.Protocol != b.Protocol {
		return int(b.Protocol) - int(a.Protocol)
	}
	if a.Metric != b.Metric {
		if a.Metric < b.Metric {
			return 1
		}
		return -1
	}
	return 0
}

// OSPFComparator orders OSPF routes: intra-area > inter-area > E1 > E2,
// then lower cost; equal-cost routes are ECMP.
func OSPFComparator(a, b Route) int {
	if a.Protocol != b.Protocol {
		return int(b.Protocol) - int(a.Protocol) // OSPF < OSPFIA < ... so smaller enum preferred
	}
	if a.Metric != b.Metric {
		if a.Metric < b.Metric {
			return 1
		}
		return -1
	}
	return 0
}

// ConnectedComparator treats all connected/static candidates for the same
// prefix as equally good (resolution happens in the main RIB).
func ConnectedComparator(a, b Route) int {
	if a.Metric != b.Metric {
		if a.Metric < b.Metric {
			return 1
		}
		return -1
	}
	return 0
}
