package routing

import (
	"sort"
	"sync/atomic"

	"repro/internal/ip4"
)

// Clock is the logical clock of paper §4.1.2: every route merged into any
// RIB is stamped with a monotonically increasing arrival time, letting the
// BGP decision process prefer the oldest equally-good path, like routers
// do, which removes pathological re-advertisement loops.
//
// The counter is atomic so that nodes of the same color class can merge in
// parallel; only the relative order of merges *within* one node matters for
// tie-breaking, and each node's merges are sequential.
type Clock struct {
	t atomic.Uint64
}

// Next returns the next timestamp.
func (c *Clock) Next() uint64 { return c.t.Add(1) }

// Now returns the current timestamp without advancing.
func (c *Clock) Now() uint64 { return c.t.Load() }

// Comparator orders candidate routes for the same prefix: positive if a is
// preferred over b, negative if b over a, zero if equally good (ECMP).
type Comparator func(a, b Route) int

// Delta records changes to a RIB's best-route set during one iteration —
// the unit of exchange in the queue-free hybrid scheme of §4.1.3. Receivers
// pull deltas directly from their neighbors' RIBs instead of having routes
// pushed onto per-session queues.
type Delta struct {
	Added   []Route
	Removed []Route
}

// Empty reports whether the delta carries no changes.
func (d Delta) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// Len returns the total number of changes.
func (d Delta) Len() int { return len(d.Added) + len(d.Removed) }

type entry struct {
	candidates []Route
	best       []Route
}

// RIB holds routes for one protocol (or the main RIB), maintaining the
// best-route set per prefix under a Comparator and accumulating a Delta of
// best-set changes.
type RIB struct {
	cmp      Comparator
	clock    *Clock
	entries  map[ip4.Prefix]*entry
	delta    Delta
	nRoutes  int // total candidates, for memory accounting
	maxCands int
}

// NewRIB creates a RIB with the given comparator and logical clock.
// The clock may be shared across RIBs (one per simulated network).
func NewRIB(cmp Comparator, clock *Clock) *RIB {
	return &RIB{cmp: cmp, clock: clock, entries: make(map[ip4.Prefix]*entry)}
}

// Merge adds a candidate route, stamping its Clock. If a candidate with the
// same Key already exists, the merge is a no-op (the existing route keeps
// its original arrival time). Returns true if the best set changed.
func (r *RIB) Merge(rt Route) bool {
	rt.Prefix = rt.Prefix.Canonical()
	e := r.entries[rt.Prefix]
	if e == nil {
		e = &entry{}
		r.entries[rt.Prefix] = e
	}
	k := rt.Key()
	for _, c := range e.candidates {
		if c.Key() == k {
			return false
		}
	}
	rt.Clock = r.clock.Next()
	e.candidates = append(e.candidates, rt)
	r.nRoutes++
	if len(e.candidates) > r.maxCands {
		r.maxCands = len(e.candidates)
	}
	return r.recompute(rt.Prefix, e)
}

// Withdraw removes the candidate with the same Key, if present. Returns
// true if the best set changed.
func (r *RIB) Withdraw(rt Route) bool {
	rt.Prefix = rt.Prefix.Canonical()
	e := r.entries[rt.Prefix]
	if e == nil {
		return false
	}
	k := rt.Key()
	for i, c := range e.candidates {
		if c.Key() == k {
			e.candidates = append(e.candidates[:i], e.candidates[i+1:]...)
			r.nRoutes--
			return r.recompute(rt.Prefix, e)
		}
	}
	return false
}

// RemoveWhere withdraws all candidates for prefix that satisfy pred —
// the implicit-withdraw step when a neighbor re-advertises a prefix.
// Returns true if the best set changed.
func (r *RIB) RemoveWhere(prefix ip4.Prefix, pred func(Route) bool) bool {
	prefix = prefix.Canonical()
	e := r.entries[prefix]
	if e == nil {
		return false
	}
	kept := e.candidates[:0]
	removed := 0
	for _, c := range e.candidates {
		if pred(c) {
			removed++
		} else {
			kept = append(kept, c)
		}
	}
	if removed == 0 {
		return false
	}
	e.candidates = kept
	r.nRoutes -= removed
	return r.recompute(prefix, e)
}

// recompute rebuilds the best set for prefix and updates the delta.
// It returns true if the best set changed.
func (r *RIB) recompute(prefix ip4.Prefix, e *entry) bool {
	var best []Route
	for _, c := range e.candidates {
		if len(best) == 0 {
			best = append(best, c)
			continue
		}
		switch d := r.cmp(c, best[0]); {
		case d > 0:
			best = append(best[:0], c)
		case d == 0:
			best = append(best, c)
		}
	}
	// Canonical order for deterministic output and cheap comparison.
	sortRoutes(best)
	if routesEqual(best, e.best) {
		return false
	}
	old := e.best
	e.best = best
	// Record best-set changes in the delta (withdrawn first, then added,
	// matching how a router would announce).
	for _, o := range old {
		if !containsKey(best, o.Key()) {
			r.delta.Removed = append(r.delta.Removed, o)
		}
	}
	for _, b := range best {
		if !containsKey(old, b.Key()) {
			r.delta.Added = append(r.delta.Added, b)
		}
	}
	if len(e.candidates) == 0 {
		delete(r.entries, prefix)
	}
	return true
}

func sortRoutes(rs []Route) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if c := a.Prefix.Compare(b.Prefix); c != 0 {
			return c < 0
		}
		if a.NextHop != b.NextHop {
			return a.NextHop < b.NextHop
		}
		if a.NextHopNode != b.NextHopNode {
			return a.NextHopNode < b.NextHopNode
		}
		if a.NextHopIface != b.NextHopIface {
			return a.NextHopIface < b.NextHopIface
		}
		return a.Protocol < b.Protocol
	})
}

func routesEqual(a, b []Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			return false
		}
	}
	return true
}

func containsKey(rs []Route, k Key) bool {
	for _, r := range rs {
		if r.Key() == k {
			return true
		}
	}
	return false
}

// TakeDelta returns the accumulated best-set delta and resets it. The
// simulator calls this once per iteration to rotate current → previous.
func (r *RIB) TakeDelta() Delta {
	d := r.delta
	r.delta = Delta{}
	return d
}

// PendingDelta reports whether changes have accumulated since TakeDelta.
func (r *RIB) PendingDelta() bool { return !r.delta.Empty() }

// Best returns the best-route set for prefix (nil if none).
func (r *RIB) Best(prefix ip4.Prefix) []Route {
	if e := r.entries[prefix.Canonical()]; e != nil {
		return e.best
	}
	return nil
}

// Candidates returns all candidate routes for prefix.
func (r *RIB) Candidates(prefix ip4.Prefix) []Route {
	if e := r.entries[prefix.Canonical()]; e != nil {
		return e.candidates
	}
	return nil
}

// Prefixes returns all prefixes with at least one candidate, sorted.
func (r *RIB) Prefixes() []ip4.Prefix {
	out := make([]ip4.Prefix, 0, len(r.entries))
	for p := range r.entries {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// AllBest returns every best route in canonical prefix order.
func (r *RIB) AllBest() []Route {
	var out []Route
	for _, p := range r.Prefixes() {
		out = append(out, r.entries[p].best...)
	}
	return out
}

// LongestMatch returns the best-route set for the longest prefix
// containing a, or nil. RIB lookup is linear in prefix lengths; the FIB
// (package fib) provides the trie used on the forwarding path.
func (r *RIB) LongestMatch(a ip4.Addr) []Route {
	for l := 32; l >= 0; l-- {
		p := ip4.Prefix{Addr: a, Len: uint8(l)}.Canonical()
		if e, ok := r.entries[p]; ok && len(e.best) > 0 {
			return e.best
		}
	}
	return nil
}

// Size returns the number of best routes across all prefixes.
func (r *RIB) Size() int {
	n := 0
	for _, e := range r.entries {
		n += len(e.best)
	}
	return n
}

// CandidateCount returns the total number of candidates held.
func (r *RIB) CandidateCount() int { return r.nRoutes }

// StateHash returns a hash of the best-route sets, used by the simulator
// to detect oscillation (non-convergence, §4.1.2).
func (r *RIB) StateHash() uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	for _, p := range r.Prefixes() {
		mix(uint64(p.Addr)<<8 | uint64(p.Len))
		for _, rt := range r.entries[p].best {
			mix(uint64(rt.NextHop))
			mix(uint64(rt.Protocol)<<32 | uint64(rt.Metric))
			mix(uint64(rt.AD))
			for _, ch := range rt.NextHopNode {
				mix(uint64(ch))
			}
			if rt.Attrs != nil {
				mix(uint64(rt.Attrs.LocalPref)<<16 ^ uint64(rt.Attrs.MED))
				for _, ch := range rt.Attrs.ASPath.asns {
					mix(uint64(ch))
				}
			}
		}
	}
	return h
}

// MainComparator orders routes for the main RIB: lower administrative
// distance wins; within the same protocol, lower metric wins; routes from
// different protocols with equal AD and different metrics are incomparable
// and treated as equally good only if metrics match.
func MainComparator(a, b Route) int {
	if a.AD != b.AD {
		return int(b.AD) - int(a.AD)
	}
	if a.Protocol != b.Protocol {
		return int(b.Protocol) - int(a.Protocol)
	}
	if a.Metric != b.Metric {
		if a.Metric < b.Metric {
			return 1
		}
		return -1
	}
	return 0
}

// OSPFComparator orders OSPF routes: intra-area > inter-area > E1 > E2,
// then lower cost; equal-cost routes are ECMP.
func OSPFComparator(a, b Route) int {
	if a.Protocol != b.Protocol {
		return int(b.Protocol) - int(a.Protocol) // OSPF < OSPFIA < ... so smaller enum preferred
	}
	if a.Metric != b.Metric {
		if a.Metric < b.Metric {
			return 1
		}
		return -1
	}
	return 0
}

// ConnectedComparator treats all connected/static candidates for the same
// prefix as equally good (resolution happens in the main RIB).
func ConnectedComparator(a, b Route) int {
	if a.Metric != b.Metric {
		if a.Metric < b.Metric {
			return 1
		}
		return -1
	}
	return 0
}
