package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/ip4"
	"repro/internal/netgen"
	"repro/internal/pipeline"
	"repro/internal/reach"
	"repro/internal/server"
)

// fabricTexts renders a Clos fabric as hostname → config text.
func fabricTexts(p netgen.FabricParams) map[string]string {
	snap := netgen.Fabric(p)
	texts := make(map[string]string, len(snap.Devices))
	for _, d := range snap.Devices {
		texts[d.Hostname] = d.Text
	}
	return texts
}

// bigFabric is the 204-device data center the end-to-end test runs
// against: 4 spines + 10 pods × (2 agg + 18 ToR).
func bigFabric() map[string]string {
	return fabricTexts(netgen.FabricParams{Name: "cx", Spines: 4, Pods: 10,
		AggPerPod: 2, TorPerPod: 18, HostNetsPerTor: 1, Multipath: true})
}

// smallFabric (10 devices) keeps the cheaper robustness tests fast.
func smallFabric() map[string]string {
	return fabricTexts(netgen.FabricParams{Name: "sm", Spines: 2, Pods: 2,
		AggPerPod: 2, TorPerPod: 2, HostNetsPerTor: 1, Multipath: true})
}

// addRoute inserts a line before the trailing "end" so the parser sees it
// inside the config body.
func addRoute(t testing.TB, text, route string) string {
	t.Helper()
	if !strings.HasSuffix(text, "end\n") {
		t.Fatal("config text does not end with 'end'")
	}
	return strings.TrimSuffix(text, "end\n") + route + "\nend\n"
}

func testCtx(t *testing.T, d time.Duration) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

type testClient struct {
	t    *testing.T
	base string
	c    *http.Client
}

// apiResp mirrors the server's JSON envelope.
type apiResp struct {
	Snapshot  string   `json:"snapshot"`
	Question  string   `json:"question"`
	ExitCode  int      `json:"exit_code"`
	Attempts  int      `json:"attempts"`
	Devices   []string `json:"devices"`
	Diags     []string `json:"diags"`
	Snapshots []string `json:"snapshots"`
	Breaker   string   `json:"breaker"`
	Deleted   bool     `json:"deleted"`
	Error     string   `json:"error"`
	Text      string   `json:"text"`
}

func newTestClient(t *testing.T, ts *httptest.Server) *testClient {
	return &testClient{t: t, base: ts.URL, c: ts.Client()}
}

func (tc *testClient) do(method, path string, body any) (*http.Response, apiResp) {
	tc.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			tc.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, tc.base+path, rd)
	if err != nil {
		tc.t.Fatal(err)
	}
	resp, err := tc.c.Do(req)
	if err != nil {
		tc.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	var ar apiResp
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil && err != io.EOF {
		tc.t.Fatalf("%s %s: decode: %v", method, path, err)
	}
	return resp, ar
}

func (tc *testClient) load(name string, configs map[string]string) apiResp {
	tc.t.Helper()
	resp, ar := tc.do(http.MethodPut, "/snapshots/"+name, map[string]any{"configs": configs})
	if resp.StatusCode != http.StatusOK {
		tc.t.Fatalf("load %s: status %d: %s", name, resp.StatusCode, ar.Error)
	}
	return ar
}

func (tc *testClient) metrics() server.Metrics {
	tc.t.Helper()
	resp, err := tc.c.Get(tc.base + "/metrics")
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	var m server.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		tc.t.Fatal(err)
	}
	return m
}

func newServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestEndToEndFabric is the headline e2e: load the 204-device fabric,
// answer reachability / service / compare questions concurrently past the
// admission limit, and require byte-identical answers to the in-process
// API plus CLI-consistent exit-code mapping (0/2/3/4 ↔ 200/400/504/200).
func TestEndToEndFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("204-device fabric e2e is not -short")
	}
	texts := bigFabric()
	_, ts := newServer(t, server.Config{MaxConcurrent: 3, MaxQueue: 32,
		QueueWait: 2 * time.Minute, RequestTimeout: 2 * time.Minute})
	tc := newTestClient(t, ts)

	ar := tc.load("prod", texts)
	if len(ar.Devices) != 204 {
		t.Fatalf("loaded %d devices, want 204", len(ar.Devices))
	}
	if ar.ExitCode != server.ExitOK {
		t.Fatalf("load exit %d, diags %v", ar.ExitCode, ar.Diags)
	}

	// In-process reference on an independent pipeline: the service answers
	// must be byte-identical (deterministic stages + canonical ROBDD
	// construction make separately built encoders agree).
	ref := core.LoadTextWith(pipeline.New(pipeline.Config{}), texts)
	if ref.Degraded() {
		t.Fatalf("reference run degraded: %v", ref.Diags())
	}
	srcDevs := []string{"cx-p01-tor01", "cx-p05-tor10", "cx-p10-tor18"}
	var srcs []reach.SourceLoc
	var q []string
	for _, d := range srcDevs {
		if _, ok := texts[d]; !ok {
			t.Fatalf("no device %s in fabric", d)
		}
		srcs = append(srcs, reach.SourceLoc{Device: d, Iface: "host1"})
		q = append(q, "src="+d+"/host1")
	}
	query := "/snapshots/prod/reachability?" + strings.Join(q, "&")
	want := server.RenderFlows(ref.Reachability(core.ReachabilityParams{Sources: srcs}))
	if want == "" {
		t.Fatal("reference rendering is empty; test is vacuous")
	}

	// Null-route half of cx-p01-tor01's host subnet (10.0.0.0/24, the
	// first allocation) on another pod's ToR, then compare.
	const victim = "cx-p02-tor01"
	broken := addRoute(t, texts[victim], "ip route 10.0.0.0 255.255.255.128 Null0")
	resp, ear := tc.do(http.MethodPost, "/snapshots/prod/edit",
		map[string]any{"as": "candidate", "changes": map[string]string{victim: broken}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edit: %d %s", resp.StatusCode, ear.Error)
	}
	refAfter := ref.Edit(map[string]string{victim: broken})
	wantDiff := server.RenderDiffs(ref.CompareWith(refAfter))
	if wantDiff == "no differences\n" {
		t.Fatal("reference compare found no differences; edit is vacuous")
	}

	// Fire concurrent requests well past MaxConcurrent: a mix of
	// reachability and compare. The queue is sized to hold them, so all
	// must succeed and agree with the reference bytes.
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path, want1 := query, want
			if i%2 == 1 {
				path, want1 = "/snapshots/prod/compare?with=candidate", wantDiff
			}
			resp, ar := tc.do(http.MethodGet, path, nil)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("req %d: status %d: %s", i, resp.StatusCode, ar.Error)
				return
			}
			if ar.ExitCode != server.ExitOK {
				errs <- fmt.Errorf("req %d: exit %d diags %v", i, ar.ExitCode, ar.Diags)
				return
			}
			if ar.Text != want1 {
				errs <- fmt.Errorf("req %d (%s): answer differs from in-process API:\n--- got ---\n%s\n--- want ---\n%s",
					i, path, ar.Text, want1)
			}
			if got := resp.Header.Get(server.ExitCodeHeader); got != "0" {
				errs <- fmt.Errorf("req %d: exit header %q", i, got)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Service reachability, same byte-identity requirement.
	dst := "10.0.0.0/24"
	p, err := ip4.ParsePrefix(dst)
	if err != nil {
		t.Fatal(err)
	}
	wantSvc := server.RenderService(ref.ServiceReachable(core.ServiceSpec{
		DstIPs: []ip4.Prefix{p}, Port: 443,
		Clients: []reach.SourceLoc{{Device: "cx-p10-tor18", Iface: "host1"}}}))
	resp, ar = tc.do(http.MethodGet,
		"/snapshots/prod/service-reachable?dst="+dst+"&port=443&client=cx-p10-tor18/host1", nil)
	if resp.StatusCode != http.StatusOK || ar.ExitCode != server.ExitOK {
		t.Fatalf("service-reachable: %d exit %d %s", resp.StatusCode, ar.ExitCode, ar.Error)
	}
	if ar.Text != wantSvc {
		t.Errorf("service answer differs:\n--- got ---\n%s\n--- want ---\n%s", ar.Text, wantSvc)
	}

	m := tc.metrics()
	if m.PeakInFlight > 3 {
		t.Errorf("admission bound violated: peak in-flight %d > 3", m.PeakInFlight)
	}
	if m.Shed429+m.Shed503 != 0 {
		t.Errorf("unexpected shedding with a large queue: 429=%d 503=%d", m.Shed429, m.Shed503)
	}

	// Exit-code mapping parity with the CLI:
	//   unknown snapshot → 404 / usage (2)
	resp, ar = tc.do(http.MethodGet, "/snapshots/nope/reachability", nil)
	if resp.StatusCode != http.StatusNotFound || ar.ExitCode != server.ExitUsage {
		t.Errorf("unknown snapshot: %d exit %d", resp.StatusCode, ar.ExitCode)
	}
	//   bad parameter → 400 / usage (2)
	resp, ar = tc.do(http.MethodGet, "/snapshots/prod/reachability?dst=not-a-prefix", nil)
	if resp.StatusCode != http.StatusBadRequest || ar.ExitCode != server.ExitUsage {
		t.Errorf("bad param: %d exit %d", resp.StatusCode, ar.ExitCode)
	}
	//   deadline on load → 504 / cancelled (3); the snapshot is not stored.
	resp, ar = tc.do(http.MethodPut, "/snapshots/doomed?timeout=1ns",
		map[string]any{"configs": smallFabric()})
	if resp.StatusCode != http.StatusGatewayTimeout || ar.ExitCode != server.ExitCancelled {
		t.Errorf("cancelled load: %d exit %d (%s)", resp.StatusCode, ar.ExitCode, ar.Error)
	}
	if resp, _ := tc.do(http.MethodGet, "/snapshots/doomed/diagnostics", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancelled load was stored: %d", resp.StatusCode)
	}
	//   deadline on a question → 504 / cancelled (3). An unqueried source
	//   forces a fresh fixed point, whose pop-count deadline checks fire
	//   on a 204-device graph.
	resp, ar = tc.do(http.MethodGet, "/snapshots/prod/reachability?src=cx-p03-tor01/host1&timeout=1ns", nil)
	if resp.StatusCode != http.StatusGatewayTimeout || ar.ExitCode != server.ExitCancelled {
		t.Errorf("cancelled question: %d exit %d (%s)", resp.StatusCode, ar.ExitCode, ar.Error)
	}
	//   ...and the poisoned snapshot recovers: the next question rebuilds
	//   from cached artifacts and answers cleanly.
	resp, ar = tc.do(http.MethodGet, "/snapshots/prod/reachability?src=cx-p03-tor01/host1", nil)
	if resp.StatusCode != http.StatusOK || ar.ExitCode != server.ExitOK {
		t.Errorf("post-cancel recovery: %d exit %d diags %v", resp.StatusCode, ar.ExitCode, ar.Diags)
	}
	//   the original answer is still byte-identical after the rebuild.
	resp, ar = tc.do(http.MethodGet, query, nil)
	if resp.StatusCode != http.StatusOK || ar.Text != want {
		t.Errorf("answer drifted after rebuild (status %d)", resp.StatusCode)
	}
}

// TestOverloadShedding drives 4x the admission capacity of slow requests
// and requires 429 shedding with Retry-After, a respected concurrency
// bound, and no dropped in-flight requests.
func TestOverloadShedding(t *testing.T) {
	defer faults.Activate(faults.New().
		Enable("server", "reachability", faults.Rule{Kind: faults.Sleep, Sleep: 150 * time.Millisecond}))()

	_, ts := newServer(t, server.Config{MaxConcurrent: 2, MaxQueue: 2,
		QueueWait: 40 * time.Millisecond, RequestTimeout: 10 * time.Second})
	tc := newTestClient(t, ts)
	tc.load("s", smallFabric())

	// Warm the snapshot so overload requests are pure question time.
	if resp, ar := tc.do(http.MethodGet, "/snapshots/s/reachability", nil); resp.StatusCode != 200 || ar.ExitCode != 0 {
		t.Fatalf("warmup failed: %d %v", resp.StatusCode, ar.Diags)
	}

	const n = 16 // 4x (MaxConcurrent + MaxQueue)
	codes := make([]int, n)
	retryAfter := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := tc.c.Get(tc.base + "/snapshots/s/reachability")
			if err != nil {
				codes[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	var ok200, shed int
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			shed++
			if retryAfter[i] == "" {
				t.Errorf("shed response %d missing Retry-After", i)
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, c)
		}
	}
	if ok200 == 0 {
		t.Error("no requests succeeded under overload")
	}
	if shed == 0 {
		t.Error("4x overload shed nothing")
	}
	m := tc.metrics()
	if m.PeakInFlight > 2 {
		t.Errorf("concurrency bound violated: peak %d > 2", m.PeakInFlight)
	}
	if m.Shed429 == 0 {
		t.Errorf("no 429 shedding recorded: 429=%d 503=%d", m.Shed429, m.Shed503)
	}
}

// TestRetryRecoversTransientFault injects panics into the first two
// attempts of a question; the server must retry with backoff and return a
// clean answer on the third.
func TestRetryRecoversTransientFault(t *testing.T) {
	defer faults.Activate(faults.New().
		Enable("server", "reachability", faults.Rule{Kind: faults.Panic, Count: 2}))()

	_, ts := newServer(t, server.Config{Retries: 2, RetryBase: time.Millisecond})
	tc := newTestClient(t, ts)
	tc.load("s", smallFabric())

	resp, ar := tc.do(http.MethodGet, "/snapshots/s/reachability", nil)
	if resp.StatusCode != http.StatusOK || ar.ExitCode != server.ExitOK {
		t.Fatalf("retried question: %d exit %d diags %v", resp.StatusCode, ar.ExitCode, ar.Diags)
	}
	if ar.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", ar.Attempts)
	}
	if m := tc.metrics(); m.Retries != 2 {
		t.Errorf("retries counter = %d, want 2", m.Retries)
	}
}

// TestCircuitBreaker trips a snapshot's breaker with persistent injected
// panics, verifies 503 + Retry-After while open (and that other questions
// are unaffected), then heals the fault and confirms the half-open probe
// closes it again.
func TestCircuitBreaker(t *testing.T) {
	restore := faults.Activate(faults.New().
		Enable("server", "reachability", faults.Rule{Kind: faults.Panic}))
	defer restore()

	_, ts := newServer(t, server.Config{Retries: -1, BreakerThreshold: 2,
		BreakerCooldown: 100 * time.Millisecond})
	tc := newTestClient(t, ts)
	tc.load("s", smallFabric())

	// Two degraded answers trip the breaker.
	for i := 0; i < 2; i++ {
		resp, ar := tc.do(http.MethodGet, "/snapshots/s/reachability", nil)
		if resp.StatusCode != http.StatusOK || ar.ExitCode != server.ExitDegraded {
			t.Fatalf("failing question %d: %d exit %d", i, resp.StatusCode, ar.ExitCode)
		}
	}
	resp, ar := tc.do(http.MethodGet, "/snapshots/s/reachability", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker admitted a request: %d %+v", resp.StatusCode, ar)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("breaker rejection missing Retry-After")
	}
	// The breaker is per-snapshot, not server-wide: a different question
	// on the same snapshot is still shed, but an unaffected question on
	// the same server answers (the fault targets reachability only).
	resp, ar = tc.do(http.MethodGet, "/snapshots/s/service-reachable?dst=10.0.0.0/24", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("snapshot breaker should shed all its questions: %d", resp.StatusCode)
	}
	tc.load("other", smallFabric())
	resp, ar = tc.do(http.MethodGet, "/snapshots/other/service-reachable?dst=10.0.0.0/24", nil)
	if resp.StatusCode != http.StatusOK || ar.ExitCode != server.ExitOK {
		t.Fatalf("healthy snapshot caught the breaker: %d %s", resp.StatusCode, ar.Error)
	}

	// Heal the fault, wait out the cooldown: the half-open probe closes it.
	restore()
	time.Sleep(120 * time.Millisecond)
	resp, ar = tc.do(http.MethodGet, "/snapshots/s/reachability", nil)
	if resp.StatusCode != http.StatusOK || ar.ExitCode != server.ExitOK {
		t.Fatalf("half-open probe: %d exit %d diags %v", resp.StatusCode, ar.ExitCode, ar.Diags)
	}
	resp, _ = tc.do(http.MethodGet, "/snapshots/s/reachability", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("breaker did not close after probe success: %d", resp.StatusCode)
	}
	if m := tc.metrics(); m.BreakerTrips != 1 || m.BreakerRejects == 0 {
		t.Errorf("breaker counters: trips=%d rejects=%d", m.BreakerTrips, m.BreakerRejects)
	}
}

// TestEditCycleRejected: an edit whose "as" name sits in the target's
// base-chain ancestry would make every future rebuild circular, so the
// server must refuse it as a usage error.
func TestEditCycleRejected(t *testing.T) {
	_, ts := newServer(t, server.Config{})
	tc := newTestClient(t, ts)
	texts := smallFabric()
	tc.load("a", texts)

	var dev string
	for d := range texts {
		dev = d
		break
	}
	edit := func(from, as string) (*http.Response, apiResp) {
		return tc.do(http.MethodPost, "/snapshots/"+from+"/edit",
			map[string]any{"as": as, "changes": map[string]string{
				dev: addRoute(t, texts[dev], "ip route 10.99.0.0 255.255.255.0 Null0")}})
	}
	if resp, ar := edit("a", "b"); resp.StatusCode != http.StatusOK {
		t.Fatalf("edit a as b: %d %s", resp.StatusCode, ar.Error)
	}
	// Direct cycle: b's base is a.
	if resp, ar := edit("b", "a"); resp.StatusCode != http.StatusBadRequest || ar.ExitCode != server.ExitUsage {
		t.Fatalf("edit b as a accepted: %d exit %d %s", resp.StatusCode, ar.ExitCode, ar.Error)
	}
	// Transitive cycle: c → b → a, then a as an ancestor again.
	if resp, ar := edit("b", "c"); resp.StatusCode != http.StatusOK {
		t.Fatalf("edit b as c: %d %s", resp.StatusCode, ar.Error)
	}
	if resp, ar := edit("c", "a"); resp.StatusCode != http.StatusBadRequest || ar.ExitCode != server.ExitUsage {
		t.Fatalf("edit c as a accepted: %d exit %d %s", resp.StatusCode, ar.ExitCode, ar.Error)
	}
	// Replacing a non-ancestor is still allowed, and both snapshots answer.
	if resp, ar := edit("a", "c"); resp.StatusCode != http.StatusOK {
		t.Fatalf("edit a as c (replace non-ancestor): %d %s", resp.StatusCode, ar.Error)
	}
	for _, name := range []string{"b", "c"} {
		resp, ar := tc.do(http.MethodGet, "/snapshots/"+name+"/reachability", nil)
		if resp.StatusCode != http.StatusOK || ar.ExitCode != server.ExitOK {
			t.Errorf("question on %s after edits: %d exit %d %v", name, resp.StatusCode, ar.ExitCode, ar.Diags)
		}
	}
}

// TestBreakerSurvivesAbortedProbe: a half-open probe whose request ends
// without a service-quality verdict (here: a client error, rejected
// after the probe slot was taken) must release the slot — not wedge the
// breaker with a probe marked in flight forever, and not close it as a
// phantom success. The next real arrival is then admitted as a fresh
// probe and closes the breaker on success.
func TestBreakerSurvivesAbortedProbe(t *testing.T) {
	restore := faults.Activate(faults.New().
		Enable("server", "reachability", faults.Rule{Kind: faults.Panic}))
	defer restore()

	_, ts := newServer(t, server.Config{Retries: -1, BreakerThreshold: 2,
		BreakerCooldown: 50 * time.Millisecond})
	tc := newTestClient(t, ts)
	tc.load("s", smallFabric())

	for i := 0; i < 2; i++ {
		if resp, ar := tc.do(http.MethodGet, "/snapshots/s/reachability", nil); ar.ExitCode != server.ExitDegraded {
			t.Fatalf("failing question %d: %d exit %d", i, resp.StatusCode, ar.ExitCode)
		}
	}
	if resp, _ := tc.do(http.MethodGet, "/snapshots/s/reachability", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("breaker did not trip: %d", resp.StatusCode)
	}

	// Wait out the cooldown, then burn the half-open probe on a request
	// rejected for a bad parameter after the breaker admitted it.
	time.Sleep(70 * time.Millisecond)
	resp, ar := tc.do(http.MethodGet, "/snapshots/s/reachability?timeout=bogus", nil)
	if resp.StatusCode != http.StatusBadRequest || ar.ExitCode != server.ExitUsage {
		t.Fatalf("aborted probe: %d exit %d (%s)", resp.StatusCode, ar.ExitCode, ar.Error)
	}
	// The phantom outcome must not have closed the breaker: the fault is
	// still active, so if the next request is admitted it degrades (a real
	// probe), and its failure re-opens the breaker rather than counting
	// from a wrongly reset state.
	resp, ar = tc.do(http.MethodGet, "/snapshots/s/reachability", nil)
	if resp.StatusCode != http.StatusOK || ar.ExitCode != server.ExitDegraded {
		t.Fatalf("probe after aborted probe: %d exit %d (want admitted + degraded)", resp.StatusCode, ar.ExitCode)
	}
	if resp, _ := tc.do(http.MethodGet, "/snapshots/s/reachability", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("failed probe did not re-open the breaker: %d", resp.StatusCode)
	}

	// Heal the fault; after another cooldown the same abort-then-probe
	// sequence must end with the breaker closed, not wedged.
	restore()
	time.Sleep(70 * time.Millisecond)
	if resp, ar := tc.do(http.MethodGet, "/snapshots/s/reachability?timeout=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("second aborted probe: %d (%s)", resp.StatusCode, ar.Error)
	}
	resp, ar = tc.do(http.MethodGet, "/snapshots/s/reachability", nil)
	if resp.StatusCode != http.StatusOK || ar.ExitCode != server.ExitOK {
		t.Fatalf("breaker wedged after aborted probe: %d exit %d %s", resp.StatusCode, ar.ExitCode, ar.Error)
	}
	resp, ar = tc.do(http.MethodGet, "/snapshots/s/reachability", nil)
	if resp.StatusCode != http.StatusOK || ar.ExitCode != server.ExitOK {
		t.Fatalf("breaker did not close after probe success: %d exit %d", resp.StatusCode, ar.ExitCode)
	}
}

// TestDrain verifies graceful shutdown: in-flight requests complete with
// full answers, new requests shed 503, readiness flips, and no goroutines
// leak.
func TestDrain(t *testing.T) {
	defer faults.Activate(faults.New().
		Enable("server", "reachability", faults.Rule{Kind: faults.Sleep, Sleep: 100 * time.Millisecond}))()

	srv, ts := newServer(t, server.Config{MaxConcurrent: 4})
	tc := newTestClient(t, ts)
	tc.load("s", smallFabric())
	// Warm up so the in-flight requests below answer from cache.
	tc.do(http.MethodGet, "/snapshots/s/reachability", nil)

	before := runtime.NumGoroutine()

	// Start in-flight requests, then drain while they sleep.
	const n = 3
	results := make(chan apiResp, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, ar := tc.do(http.MethodGet, "/snapshots/s/reachability", nil)
			results <- ar
		}()
	}
	time.Sleep(30 * time.Millisecond) // let them pass admission
	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(testCtx(t, 5*time.Second)) }()
	time.Sleep(10 * time.Millisecond)

	// Readiness has flipped and new work is shed with 503.
	resp, err := tc.c.Get(tc.base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: %d", resp.StatusCode)
	}
	resp2, ar := tc.do(http.MethodGet, "/snapshots/s/reachability", nil)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new request during drain: %d %+v", resp2.StatusCode, ar)
	}

	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	close(results)
	got := 0
	for ar := range results {
		got++
		if ar.ExitCode != server.ExitOK {
			t.Errorf("in-flight request dropped during drain: exit %d %s", ar.ExitCode, ar.Error)
		}
	}
	if got != n {
		t.Errorf("%d of %d in-flight requests answered", got, n)
	}

	// Goroutines settle back (slack for the HTTP stack's idle conns).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+8 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: before %d, after %d", before, runtime.NumGoroutine())
}

// TestWarmRestart is the service-level crash/restart property: a second
// server sharing only the cache directory (fresh process state) serves
// parse + data plane from disk — even with a torn temp file left by a
// kill mid-write — and answers byte-identically to the cold run.
func TestWarmRestart(t *testing.T) {
	dir := t.TempDir()
	texts := smallFabric()

	cold, coldTS := newServer(t, server.Config{CacheDir: dir})
	tc := newTestClient(t, coldTS)
	tc.load("s", texts)
	_, coldAns := tc.do(http.MethodGet, "/snapshots/s/reachability", nil)
	if coldAns.ExitCode != server.ExitOK || coldAns.Text == "" {
		t.Fatalf("cold answer: exit %d, %d bytes", coldAns.ExitCode, len(coldAns.Text))
	}
	coldStats := cold.Metrics()
	if coldStats.Disk.Puts == 0 {
		t.Fatal("cold run persisted nothing")
	}
	coldTS.Close()

	// The crash legacy: an orphan temp from a kill mid-write.
	if err := os.WriteFile(filepath.Join(dir, "put-999.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Warm server: same directory, fresh everything else.
	warm, warmTS := newServer(t, server.Config{CacheDir: dir})
	tc2 := newTestClient(t, warmTS)
	tc2.load("s", texts)
	_, warmAns := tc2.do(http.MethodGet, "/snapshots/s/reachability", nil)
	if warmAns.ExitCode != server.ExitOK {
		t.Fatalf("warm answer degraded: %v", warmAns.Diags)
	}
	if warmAns.Text != coldAns.Text {
		t.Errorf("warm answer differs from cold:\n--- warm ---\n%s\n--- cold ---\n%s", warmAns.Text, coldAns.Text)
	}
	m := warm.Metrics()
	if m.Disk.ScanRemoved != 1 {
		t.Errorf("recovery scan removed %d temps, want 1", m.Disk.ScanRemoved)
	}
	if m.Pipeline.Parse.DiskHits != int64(len(texts)) {
		t.Errorf("parse disk hits = %d, want %d", m.Pipeline.Parse.DiskHits, len(texts))
	}
	if m.Pipeline.DataPlane.DiskHits != 1 {
		t.Errorf("dataplane disk hits = %d, want 1", m.Pipeline.DataPlane.DiskHits)
	}
	if m.Pipeline.DataPlane.ColdRuns != 0 {
		t.Errorf("warm restart re-simulated the data plane: %+v", m.Pipeline.DataPlane)
	}
}
