package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/ip4"
	"repro/internal/reach"
)

// Exit codes mirror cmd/batfish so scripted clients can treat the service
// and the CLI interchangeably: 0 success, 1 error, 2 usage, 3 cancelled,
// 4 degraded-but-usable. Every response carries the code in the JSON body
// and the X-Batfish-Exit-Code header.
const (
	ExitOK        = 0
	ExitError     = 1
	ExitUsage     = 2
	ExitCancelled = 3
	ExitDegraded  = 4
)

// ExitCodeHeader carries the CLI-equivalent exit code on every response.
const ExitCodeHeader = "X-Batfish-Exit-Code"

// maxBodyBytes bounds snapshot upload bodies (64 MiB).
const maxBodyBytes = 64 << 20

// apiResponse is the uniform JSON envelope for every endpoint.
type apiResponse struct {
	Snapshot    string   `json:"snapshot,omitempty"`
	Question    string   `json:"question,omitempty"`
	ExitCode    int      `json:"exit_code"`
	Attempts    int      `json:"attempts,omitempty"`
	Devices     []string `json:"devices,omitempty"`
	Warnings    int      `json:"warnings,omitempty"`
	Quarantined []string `json:"quarantined,omitempty"`
	Diags       []string `json:"diags,omitempty"`
	Snapshots   []string `json:"snapshots,omitempty"`
	Breaker     string   `json:"breaker,omitempty"`
	Deleted     bool     `json:"deleted,omitempty"`
	Error       string   `json:"error,omitempty"`
	Text        string   `json:"text,omitempty"`
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /snapshots", s.wrap(s.handleList))
	s.mux.HandleFunc("PUT /snapshots/{name}", s.wrap(s.handleLoad))
	s.mux.HandleFunc("POST /snapshots/{name}", s.wrap(s.handleLoad))
	s.mux.HandleFunc("DELETE /snapshots/{name}", s.wrap(s.handleDelete))
	s.mux.HandleFunc("POST /snapshots/{name}/edit", s.wrap(s.handleEdit))
	s.mux.HandleFunc("GET /snapshots/{name}/reachability", s.wrap(s.handleReachability))
	s.mux.HandleFunc("GET /snapshots/{name}/service-reachable", s.wrap(s.handleServiceReachable))
	s.mux.HandleFunc("GET /snapshots/{name}/compare", s.wrap(s.handleCompare))
	s.mux.HandleFunc("POST /snapshots/{name}/sweep", s.wrap(s.handleSweep))
	s.mux.HandleFunc("GET /snapshots/{name}/diagnostics", s.wrap(s.handleDiagnostics))
}

// wrap is the common middleware: request counting, drain shedding,
// last-resort panic recovery, and latency observation.
func (s *Server) wrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.m.Requests.Add(1)
		if !s.track() {
			s.m.Shed503.Add(1)
			writeShed(w, http.StatusServiceUnavailable, time.Second, "server is draining")
			return
		}
		defer s.inflight.Done()
		defer func() {
			if v := recover(); v != nil {
				s.m.PanicsRecovered.Add(1)
				s.m.ServerErrors.Add(1)
				writeJSON(w, http.StatusInternalServerError,
					apiResponse{ExitCode: ExitError, Error: fmt.Sprintf("internal error: %v", v)})
			}
			s.m.observe(time.Since(start))
		}()
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, resp apiResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(ExitCodeHeader, strconv.Itoa(resp.ExitCode))
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp) //nolint:errcheck // client went away; nothing to do
}

// writeShed rejects with a Retry-After hint (429 or 503).
func writeShed(w http.ResponseWriter, status int, retryAfter time.Duration, reason string) {
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, status, apiResponse{ExitCode: ExitError, Error: reason})
}

// reqContext derives the request's analysis context: the server's
// deadline, optionally tightened by ?timeout=.
func (s *Server) reqContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.cfg.RequestTimeout
	if v := r.URL.Query().Get("timeout"); v != "" {
		pd, err := time.ParseDuration(v)
		if err != nil || pd <= 0 {
			return nil, nil, fmt.Errorf("bad timeout %q", v)
		}
		if pd < d {
			d = pd
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Metrics()) //nolint:errcheck
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, apiResponse{ExitCode: ExitOK, Snapshots: s.names()})
}

// loadBody is the PUT /snapshots/{name} request body.
type loadBody struct {
	Configs map[string]string `json:"configs"`
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var body loadBody
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&body); err != nil {
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage, Error: "bad body: " + err.Error()})
		return
	}
	if len(body.Configs) == 0 {
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage, Error: "no configs in body"})
		return
	}
	ctx, cancel, err := s.reqContext(r)
	if err != nil {
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage, Error: err.Error()})
		return
	}
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		s.rejectAdmission(w, err)
		return
	}
	defer release()

	faults.Fire("server", "load")
	snap := core.LoadTextWithContext(ctx, s.pl, body.Configs)
	if snap.Cancelled() {
		s.m.Cancelled.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, apiResponse{
			Snapshot: name, ExitCode: ExitCancelled,
			Error: "snapshot load cancelled by deadline", Diags: diagStrings(snap.Diags())})
		return
	}
	snap.WithContext(nil)
	texts := make(map[string]string, len(body.Configs))
	for k, v := range body.Configs {
		texts[k] = v
	}
	// Read the snapshot's state before putEntry publishes it: once the
	// entry is visible, another request may mutate the snapshot under
	// anMu, which this handler does not hold.
	resp := apiResponse{
		Snapshot:    name,
		ExitCode:    ExitOK,
		Devices:     snap.Net.DeviceNames(),
		Warnings:    len(snap.Warnings),
		Quarantined: snap.Quarantined(),
		Diags:       diagStrings(snap.Diags()),
	}
	s.putEntry(&snapEntry{name: name, texts: texts, snap: snap})
	if len(resp.Diags) > 0 {
		resp.ExitCode = ExitDegraded
		s.m.Degraded.Add(1)
	} else {
		s.m.OK.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

// editBody is the POST /snapshots/{name}/edit request body.
type editBody struct {
	As      string            `json:"as"`
	Changes map[string]string `json:"changes"`
}

func (s *Server) handleEdit(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.entry(name)
	if !ok {
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusNotFound, apiResponse{ExitCode: ExitUsage, Error: "no snapshot " + name})
		return
	}
	var body editBody
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&body); err != nil {
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage, Error: "bad body: " + err.Error()})
		return
	}
	if body.As == "" || body.As == name {
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage, Error: `"as" must name a distinct snapshot`})
		return
	}
	if s.inBaseChain(name, body.As) {
		// Replacing an ancestor of the edit target would make the base
		// chain circular (edit A as B, then edit B as A), poisoning every
		// future rebuild of either snapshot.
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage,
			Error: fmt.Sprintf("%q is in %q's base chain; the edit would create a cycle", body.As, name)})
		return
	}
	ctx, cancel, err := s.reqContext(r)
	if err != nil {
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage, Error: err.Error()})
		return
	}
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		s.rejectAdmission(w, err)
		return
	}
	defer release()

	faults.Fire("server", "edit")
	// The base resolution and the overlay build both touch snapshot
	// internals that concurrent questions mutate, so they run under anMu;
	// the response fields are read there too, before putEntry publishes
	// the new snapshot to other requests.
	s.anMu.Lock()
	base, err := s.snapshotFor(e)
	if err != nil {
		s.anMu.Unlock()
		s.m.ServerErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, apiResponse{ExitCode: ExitError, Error: err.Error()})
		return
	}
	ns := base.Edit(body.Changes)
	resp := apiResponse{
		Snapshot:    body.As,
		ExitCode:    ExitOK,
		Devices:     ns.Net.DeviceNames(),
		Warnings:    len(ns.Warnings),
		Quarantined: ns.Quarantined(),
		Diags:       diagStrings(ns.Diags()),
	}
	s.anMu.Unlock()
	texts := make(map[string]string, len(resp.Devices))
	e.mu.Lock()
	for k, v := range e.texts {
		texts[k] = v
	}
	e.mu.Unlock()
	for k, v := range body.Changes {
		if v == "" {
			delete(texts, k)
		} else {
			texts[k] = v
		}
	}
	changes := make(map[string]string, len(body.Changes))
	for k, v := range body.Changes {
		changes[k] = v
	}
	s.putEntry(&snapEntry{name: body.As, texts: texts, base: name, changes: changes, snap: ns})
	if len(resp.Diags) > 0 {
		resp.ExitCode = ExitDegraded
		s.m.Degraded.Add(1)
	} else {
		s.m.OK.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.deleteEntry(name) {
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusNotFound, apiResponse{ExitCode: ExitUsage, Error: "no snapshot " + name})
		return
	}
	writeJSON(w, http.StatusOK, apiResponse{Snapshot: name, ExitCode: ExitOK, Deleted: true})
}

func (s *Server) handleDiagnostics(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.entry(name)
	if !ok {
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusNotFound, apiResponse{ExitCode: ExitUsage, Error: "no snapshot " + name})
		return
	}
	s.anMu.Lock()
	snap, err := s.snapshotFor(e)
	if err != nil {
		s.anMu.Unlock()
		s.m.ServerErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, apiResponse{ExitCode: ExitError, Error: err.Error()})
		return
	}
	quarantined := snap.Quarantined()
	diags := diagStrings(snap.Diags())
	s.anMu.Unlock()
	state, _ := e.br.snapshotState()
	resp := apiResponse{
		Snapshot:    name,
		ExitCode:    ExitOK,
		Quarantined: quarantined,
		Diags:       diags,
		Breaker:     state,
	}
	if len(resp.Diags) > 0 {
		resp.ExitCode = ExitDegraded
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReachability(w http.ResponseWriter, r *http.Request) {
	params := core.ReachabilityParams{}
	q := r.URL.Query()
	if srcs, err := parseSourceLocs(q["src"]); err != nil {
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage, Error: err.Error()})
		return
	} else {
		params.Sources = srcs
	}
	for _, v := range q["dst"] {
		p, err := ip4.ParsePrefix(v)
		if err != nil {
			s.m.ClientErrors.Add(1)
			writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage, Error: "bad dst: " + err.Error()})
			return
		}
		params.DstIPs = append(params.DstIPs, p)
	}
	var text string
	s.serveQuestion(w, r, "reachability", func(snap *core.Snapshot) {
		text = RenderFlows(snap.Reachability(params))
	}, &text)
}

func (s *Server) handleServiceReachable(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	spec := core.ServiceSpec{}
	for _, v := range q["dst"] {
		p, err := ip4.ParsePrefix(v)
		if err != nil {
			s.m.ClientErrors.Add(1)
			writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage, Error: "bad dst: " + err.Error()})
			return
		}
		spec.DstIPs = append(spec.DstIPs, p)
	}
	if len(spec.DstIPs) == 0 {
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage, Error: "at least one dst=CIDR is required"})
		return
	}
	if v := q.Get("port"); v != "" {
		p, err := strconv.ParseUint(v, 10, 16)
		if err != nil {
			s.m.ClientErrors.Add(1)
			writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage, Error: "bad port: " + err.Error()})
			return
		}
		spec.Port = uint16(p)
	}
	if v := q.Get("proto"); v != "" {
		p, err := strconv.ParseUint(v, 10, 8)
		if err != nil {
			s.m.ClientErrors.Add(1)
			writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage, Error: "bad proto: " + err.Error()})
			return
		}
		spec.Proto = uint8(p)
	}
	clients, err := parseSourceLocs(q["client"])
	if err != nil {
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage, Error: err.Error()})
		return
	}
	spec.Clients = clients
	var text string
	s.serveQuestion(w, r, "service-reachable", func(snap *core.Snapshot) {
		text = RenderService(snap.ServiceReachable(spec))
	}, &text)
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	withName := r.URL.Query().Get("with")
	if withName == "" {
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage, Error: "with=SNAPSHOT is required"})
		return
	}
	we, ok := s.entry(withName)
	if !ok {
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusNotFound, apiResponse{ExitCode: ExitUsage, Error: "no snapshot " + withName})
		return
	}
	var text string
	s.serveQuestion(w, r, "compare", func(snap *core.Snapshot) {
		// Resolve the candidate inside the question body so its (possible)
		// rebuild and the CompareWith mutations of its memoized artifacts
		// both happen under anMu. snapshotFor cannot fail today (rebuilds
		// bottom out in LoadTextWith); if it ever does, the panic is
		// contained by the question guard and degrades the answer.
		after, err := s.snapshotFor(we)
		if err != nil {
			panic(fmt.Sprintf("rebuild %q: %v", withName, err))
		}
		text = RenderDiffs(snap.CompareWith(after))
	}, &text)
}

// serveQuestion is the shared question path: resolve the entry, consult
// its breaker, pass admission control, run the question (with retry)
// under the request deadline, feed the outcome back into the breaker, and
// map the containment result onto HTTP + exit codes.
func (s *Server) serveQuestion(w http.ResponseWriter, r *http.Request, q string, fn func(*core.Snapshot), text *string) {
	name := r.PathValue("name")
	e, ok := s.entry(name)
	if !ok {
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusNotFound, apiResponse{ExitCode: ExitUsage, Error: "no snapshot " + name})
		return
	}
	if ok, retryAfter := e.br.allow(s.cfg.BreakerThreshold, s.cfg.BreakerCooldown); !ok {
		s.m.BreakerRejects.Add(1)
		s.m.Shed503.Add(1)
		writeShed(w, http.StatusServiceUnavailable, retryAfter,
			fmt.Sprintf("circuit breaker open for snapshot %s", name))
		return
	}
	ctx, cancel, err := s.reqContext(r)
	if err != nil {
		// Client error, not the snapshot's fault: release a half-open probe
		// neutrally — neither closing the breaker nor resetting the
		// consecutive-failure count of a closed one.
		e.br.abort(s.cfg.BreakerThreshold)
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage, Error: err.Error()})
		return
	}
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		// Shed before execution: the probe never touched the snapshot, so
		// release it neutrally rather than counting a success — overload
		// must not close a failing snapshot's breaker or mask its failures.
		e.br.abort(s.cfg.BreakerThreshold)
		s.rejectAdmission(w, err)
		return
	}
	defer release()

	qr := s.runQuestion(ctx, e, q, func(snap *core.Snapshot) {
		faults.Fire("server", q)
		fn(snap)
	})

	resp := apiResponse{Snapshot: name, Question: q, Attempts: qr.attempts,
		Diags: diagStrings(qr.diags), Text: *text}
	switch {
	case qr.cancelled:
		// The client's own deadline is not a service-quality signal: count
		// neither success nor failure, but release a half-open probe so the
		// breaker cannot wedge with probing set forever.
		e.br.abort(s.cfg.BreakerThreshold)
		s.m.Cancelled.Add(1)
		resp.ExitCode = ExitCancelled
		resp.Error = "question cancelled by deadline"
		writeJSON(w, http.StatusGatewayTimeout, resp)
	case len(qr.diags) > 0:
		e.br.record(s.cfg.BreakerThreshold, false)
		s.m.Degraded.Add(1)
		resp.ExitCode = ExitDegraded
		writeJSON(w, http.StatusOK, resp)
	default:
		e.br.record(s.cfg.BreakerThreshold, true)
		s.m.OK.Add(1)
		resp.ExitCode = ExitOK
		writeJSON(w, http.StatusOK, resp)
	}
}

// rejectAdmission maps an acquire error onto the wire.
func (s *Server) rejectAdmission(w http.ResponseWriter, err error) {
	if se, ok := err.(*ShedError); ok {
		writeShed(w, se.Status, se.RetryAfter, se.Reason)
		return
	}
	// The request context expired while queued.
	s.m.Cancelled.Add(1)
	writeJSON(w, http.StatusGatewayTimeout,
		apiResponse{ExitCode: ExitCancelled, Error: "deadline expired while queued"})
}

// parseSourceLocs parses repeated "device" or "device/iface" params.
func parseSourceLocs(vals []string) ([]reach.SourceLoc, error) {
	var out []reach.SourceLoc
	for _, v := range vals {
		if v == "" {
			return nil, fmt.Errorf("empty source location")
		}
		dev, iface, _ := strings.Cut(v, "/")
		out = append(out, reach.SourceLoc{Device: dev, Iface: iface})
	}
	return out, nil
}
