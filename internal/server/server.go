// Package server is the long-running analysis service: batfishd's engine.
// It manages named configuration snapshots and answers questions over
// HTTP, hardened end to end against the failure modes a shared service
// meets that a CLI run does not — overload, slow clients, transient
// infrastructure faults, crashes mid-write, and repeatedly failing
// snapshots.
//
// The hardening layers, outermost first:
//
//   - Admission control: a semaphore bounds concurrently executing
//     requests and a bounded, deadline-aware wait queue absorbs bursts.
//     When the queue is full or the wait budget expires the request is
//     shed immediately with 429 (Too Many Requests) or, while draining,
//     503 — both with Retry-After — rather than queued without bound.
//   - Per-request deadlines: every request runs under a context with a
//     deadline (server default, optionally tightened per request), which
//     propagates through the snapshot's existing context plumbing into
//     parse, simulation, and the BDD fixed points.
//   - Retry with backoff: transient failures (recovered panics) are
//     retried against a freshly rebuilt snapshot with jittered
//     exponential backoff; deterministic degradation (quarantines,
//     budget trips) is returned immediately.
//   - Circuit breaker: a snapshot that degrades repeatedly trips its
//     breaker, shedding further questions with 503 + Retry-After until a
//     cooldown passes; a half-open probe then decides recovery.
//   - Graceful drain: SIGTERM (via Drain) flips readiness, sheds new
//     work, and waits for in-flight requests to finish.
//
// Underneath, the pipeline can be given a persistent diskcache tier so a
// restarted server rehydrates parse and data-plane artifacts instead of
// recomputing them (warm restart).
//
// Concurrency contract: the pipeline's shared BDD factory is
// unsynchronized (see internal/pipeline), so every request that builds
// graphs, analyses, or runs BDD queries serializes on one mutex. The
// admission semaphore therefore bounds queueing and memory, while anMu
// preserves correctness; parse and simulation still overlap freely.
package server

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/diskcache"
	"repro/internal/pipeline"
)

// Config tunes a Server. Zero values take the documented defaults.
type Config struct {
	// MaxConcurrent bounds requests executing at once (default 4).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an execution slot; arrivals
	// beyond it are shed with 429 (default 2*MaxConcurrent).
	MaxQueue int
	// QueueWait bounds how long a request may wait for a slot before
	// being shed with 429 (default 5s).
	QueueWait time.Duration
	// RequestTimeout is the per-request deadline propagated into the
	// analysis context (default 60s). Clients may tighten (never extend)
	// it with a ?timeout= query parameter.
	RequestTimeout time.Duration
	// Retries is how many times a transiently failed question is retried
	// against a rebuilt snapshot (default 2; negative disables).
	Retries int
	// RetryBase is the first retry's backoff; later retries double it,
	// each with ±50% jitter (default 25ms).
	RetryBase time.Duration
	// BreakerThreshold trips a snapshot's circuit breaker after this many
	// consecutive service-quality failures (default 3; negative disables).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker rejects before
	// half-opening for a probe (default 5s).
	BreakerCooldown time.Duration
	// CacheDir, when set, opens a persistent diskcache tier there so
	// parse and data-plane artifacts survive restarts.
	CacheDir string
	// CacheMaxBytes bounds the disk tier (diskcache defaults apply).
	CacheMaxBytes int64
	// StoreCapacity bounds the in-memory artifact store (pipeline
	// default when 0).
	StoreCapacity int
	// Seed makes retry jitter deterministic in tests (time-seeded when 0).
	Seed int64
}

func (c *Config) defaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 5 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
}

// snapEntry is one named snapshot the server manages. The live
// *core.Snapshot is rebuilt from the retained sources whenever the old
// one has been poisoned (cancelled mid-stage, or carrying question-stage
// diagnostics from a transient fault); rebuilds are cheap because every
// clean artifact is still in the pipeline's store or on disk.
type snapEntry struct {
	name string

	mu      sync.Mutex
	texts   map[string]string // full source set (base texts + edits applied)
	base    string            // entry this one was edited from ("" for roots)
	changes map[string]string // the Edit overlay relative to base
	snap    *core.Snapshot    // current live snapshot; nil forces rebuild

	br breaker
}

// dropSnap discards the live snapshot if it is still the given one, so a
// concurrent request that already rebuilt is not clobbered.
func (e *snapEntry) dropSnap(old *core.Snapshot) {
	e.mu.Lock()
	if e.snap == old {
		e.snap = nil
	}
	e.mu.Unlock()
}

// Server is the analysis service. Construct with New; it is safe for
// concurrent use by multiple HTTP requests.
type Server struct {
	cfg  Config
	pl   *pipeline.Pipeline
	disk *diskcache.Cache
	mux  *http.ServeMux

	mu    sync.Mutex
	snaps map[string]*snapEntry

	// anMu serializes all BDD-touching work (graph/analysis builds and
	// queries) across snapshots, per the pipeline's shared-factory
	// contract.
	anMu sync.Mutex

	sem      chan struct{}
	queued   atomic.Int64
	cur      atomic.Int64
	draining atomic.Bool
	drainCh  chan struct{}
	// trackMu orders track's Add against Drain's flag flip: an Add only
	// happens after observing draining=false under the lock, so every
	// Add-from-zero happens-before Drain's Wait (the WaitGroup contract).
	trackMu  sync.Mutex
	inflight sync.WaitGroup
	started  time.Time

	rndMu sync.Mutex
	rnd   *rand.Rand

	// clusterMetrics, when set (SetClusterMetrics), feeds the Cluster
	// field of Metrics snapshots. Guarded by mu.
	clusterMetrics func() any

	m counters
}

// New builds a Server, opening the persistent cache tier when configured.
func New(cfg Config) (*Server, error) {
	cfg.defaults()
	s := &Server{
		cfg:     cfg,
		snaps:   make(map[string]*snapEntry),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		drainCh: make(chan struct{}),
		started: time.Now(),
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	s.rnd = rand.New(rand.NewSource(seed))
	if cfg.CacheDir != "" {
		disk, err := diskcache.Open(cfg.CacheDir, diskcache.Options{MaxBytes: cfg.CacheMaxBytes})
		if err != nil {
			return nil, fmt.Errorf("server: open cache: %w", err)
		}
		s.disk = disk
	}
	s.pl = pipeline.New(pipeline.Config{StoreCapacity: cfg.StoreCapacity, Disk: s.disk})
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// Handler returns the HTTP handler serving the full API.
func (s *Server) Handler() http.Handler { return s.mux }

// Pipeline exposes the server's pipeline (tests and metrics).
func (s *Server) Pipeline() *pipeline.Pipeline { return s.pl }

// Draining reports whether the server has begun shedding new work.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain flips readiness, sheds queued and new requests with 503, and
// waits for in-flight requests to complete (bounded by ctx). It is the
// SIGTERM path: admitted work always finishes; nothing new starts.
func (s *Server) Drain(ctx context.Context) error {
	s.trackMu.Lock()
	if s.draining.CompareAndSwap(false, true) {
		close(s.drainCh)
	}
	s.trackMu.Unlock()
	done := make(chan struct{})
	//gblint:ignore panic-safe body is WaitGroup.Wait plus close; a panic here means broken in-flight accounting and must crash loudly, not be contained
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %d request(s) still in flight: %w",
			s.cur.Load(), ctx.Err())
	}
}

// track registers an in-flight request; it returns false (and does not
// track) once draining has begun.
func (s *Server) track() bool {
	s.trackMu.Lock()
	defer s.trackMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.inflight.Add(1)
	return true
}

// ShedError is an admission-control rejection. It is exported so the
// cluster layer can map cluster-internal admission failures onto the same
// 429/503 + Retry-After wire semantics the HTTP handlers use.
type ShedError struct {
	Status     int           // 429 or 503
	RetryAfter time.Duration // suggested client backoff
	Reason     string
}

func (e *ShedError) Error() string { return e.Reason }

// acquire takes an execution slot, waiting in the bounded queue. On
// rejection it returns a ShedError carrying the HTTP status and
// Retry-After. The release func must be called exactly once when non-nil.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	if s.draining.Load() {
		s.m.Shed503.Add(1)
		return nil, &ShedError{Status: http.StatusServiceUnavailable,
			RetryAfter: time.Second, Reason: "server is draining"}
	}
	release = func() {
		s.cur.Add(-1)
		<-s.sem
	}
	// Fast path: a free slot means the request never waits and does not
	// count against the queue bound.
	select {
	case s.sem <- struct{}{}:
		maxInt64(&s.m.peakConc, s.cur.Add(1))
		return release, nil
	default:
	}
	// All slots are busy, so this request is a genuine waiter: queued
	// counts exactly those, and the shed bound is exactly MaxQueue.
	q := s.queued.Add(1)
	maxInt64(&s.m.peakQueue, q)
	if q > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.m.Shed429.Add(1)
		return nil, &ShedError{Status: http.StatusTooManyRequests,
			RetryAfter: s.cfg.QueueWait, Reason: "admission queue is full"}
	}
	timer := time.NewTimer(s.cfg.QueueWait)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		s.queued.Add(-1)
		maxInt64(&s.m.peakConc, s.cur.Add(1))
		return release, nil
	case <-timer.C:
		s.queued.Add(-1)
		s.m.Shed429.Add(1)
		return nil, &ShedError{Status: http.StatusTooManyRequests,
			RetryAfter: s.cfg.QueueWait, Reason: "timed out waiting for an execution slot"}
	case <-s.drainCh:
		s.queued.Add(-1)
		s.m.Shed503.Add(1)
		return nil, &ShedError{Status: http.StatusServiceUnavailable,
			RetryAfter: time.Second, Reason: "server is draining"}
	case <-ctx.Done():
		s.queued.Add(-1)
		return nil, ctx.Err()
	}
}

// maxInt64 raises the atomic to at least v.
func maxInt64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// entry looks up a snapshot by name.
func (s *Server) entry(name string) (*snapEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.snaps[name]
	return e, ok
}

// putEntry installs (or replaces) a named snapshot entry.
func (s *Server) putEntry(e *snapEntry) {
	s.mu.Lock()
	s.snaps[e.name] = e
	s.mu.Unlock()
}

// deleteEntry removes a named snapshot; it reports whether it existed.
func (s *Server) deleteEntry(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.snaps[name]
	delete(s.snaps, name)
	return ok
}

// names returns the sorted snapshot names.
func (s *Server) names() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.snaps))
	for n := range s.snaps {
		out = append(out, n)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// snapshotFor returns the entry's live snapshot, rebuilding it from the
// retained sources when it is missing or has been poisoned by a past
// request (cancellation latches inside stage artifacts; question-stage
// diagnostics accumulate). Rebuilds re-parse through the pipeline, so
// every clean cached artifact — in memory or on disk — is reused; only
// analyses private to the old snapshot recompute. Edited snapshots
// rebuild against their base entry, preserving the baseline link that
// makes CompareWith incremental.
//
// Callers must hold anMu: both the Cancelled fast path and a rebuild
// read/write snapshot internals that questions mutate, and a published
// snapshot may be touched by any request. Lock order is anMu → e.mu.
func (s *Server) snapshotFor(e *snapEntry) (*core.Snapshot, error) {
	return s.snapshotForChain(e, nil)
}

// snapshotForChain is snapshotFor with cycle protection: visited holds
// the entry names already locked on this rebuild path. handleEdit
// rejects edits that would put the new name in its target's base-chain
// ancestry, but two racing edits can still weave a cycle past that
// check, so a revisited base rebuilds standalone from the entry's
// merged texts instead of recursing — recursing would re-lock a mutex
// this goroutine already holds and deadlock the server.
func (s *Server) snapshotForChain(e *snapEntry, visited map[string]bool) (*core.Snapshot, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.snap != nil && !e.snap.Cancelled() {
		return e.snap, nil
	}
	if e.base == "" {
		e.snap = core.LoadTextWith(s.pl, e.texts)
		return e.snap, nil
	}
	if visited == nil {
		visited = make(map[string]bool)
	}
	visited[e.name] = true
	be, ok := s.entry(e.base)
	if !ok || visited[be.name] {
		// Base deleted, or a base cycle: rebuild standalone from the
		// merged texts (which always reproduce the snapshot exactly; only
		// the incremental-compare baseline link is lost).
		e.snap = core.LoadTextWith(s.pl, e.texts)
		return e.snap, nil
	}
	bs, err := s.snapshotForChain(be, visited)
	if err != nil {
		return nil, err
	}
	e.snap = bs.Edit(e.changes)
	return e.snap, nil
}

// inBaseChain reports whether ancestor appears in name's base-chain
// ancestry (name itself included). Used by handleEdit to refuse edits
// that would create a base cycle.
func (s *Server) inBaseChain(name, ancestor string) bool {
	seen := make(map[string]bool)
	for cur := name; cur != "" && !seen[cur]; {
		if cur == ancestor {
			return true
		}
		seen[cur] = true
		e, ok := s.entry(cur)
		if !ok {
			return false
		}
		e.mu.Lock()
		cur = e.base
		e.mu.Unlock()
	}
	return false
}

// transient reports whether the diagnostics describe a failure worth
// retrying: recovered panics and contained errors may be environmental
// (fault injection models them), while quarantines, budget trips,
// non-convergence, and cancellation are deterministic or client-owned.
func transient(ds []diag.Diagnostic) bool {
	for _, d := range ds {
		switch d.Kind {
		case diag.KindPanic, diag.KindError:
			return true
		}
	}
	return false
}

// backoff sleeps the jittered exponential delay for retry attempt n
// (1-based), bounded by ctx. Returns false if ctx expired first.
func (s *Server) backoff(ctx context.Context, n int) bool {
	d := s.cfg.RetryBase << (n - 1)
	s.rndMu.Lock()
	jit := time.Duration(s.rnd.Int63n(int64(d) + 1))
	s.rndMu.Unlock()
	d = d/2 + jit // uniform in [d/2, 3d/2]
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// qresult is the containment outcome of one question run.
type qresult struct {
	attempts  int
	diags     []diag.Diagnostic // last attempt's new diagnostics
	cancelled bool              // the snapshot observed ctx expiry
}

// runQuestion executes one question body against the entry's snapshot
// under the BDD mutex, with the request context bound for the duration
// of the call and transient-failure retry on a rebuilt snapshot.
//
// Context hygiene is the subtle part: a context-bound snapshot builds a
// private analysis that checks its context during later queries, so
// after a clean run the context is unbound from both the snapshot and
// its analysis before the next request can see them; a poisoned run
// (cancelled or newly degraded) discards the snapshot instead. Either
// way no request ever observes another request's expired context.
func (s *Server) runQuestion(ctx context.Context, e *snapEntry, q string, fn func(*core.Snapshot)) qresult {
	var res qresult
	for attempt := 1; ; attempt++ {
		res.attempts = attempt
		s.anMu.Lock()
		snap, err := s.snapshotFor(e)
		if err != nil {
			s.anMu.Unlock()
			res.diags = []diag.Diagnostic{{Stage: diag.StageQuestion, Kind: diag.KindError, Message: err.Error()}}
			return res
		}
		before := len(snap.Diags())
		snap.WithContext(ctx)
		panicDiag := diag.Capture(diag.StageQuestion, q, func() {
			// The analysis is memoized across requests, so binding the
			// snapshot alone is not enough: an analysis built by an
			// earlier request still holds that request's (unbound)
			// context. Rebind so this request's deadline reaches the BDD
			// fixed points too. Inside Capture because a first call may
			// build data plane and graph, which can trip budgets.
			snap.Analysis().WithContext(ctx)
			fn(snap)
		})
		snap.WithContext(nil)
		cancelled := snap.Cancelled()
		if !cancelled && panicDiag == nil {
			// Unbind the request context from the (private) analysis so
			// it cannot poison later requests; a poisoned run discards
			// the whole snapshot below instead.
			snap.Analysis().WithContext(nil)
		}
		after := snap.Diags()
		s.anMu.Unlock()

		res.cancelled = cancelled
		res.diags = after[before:]
		if panicDiag != nil {
			s.m.PanicsRecovered.Add(1)
			res.diags = append(res.diags, *panicDiag)
		}
		poisoned := cancelled || len(res.diags) > 0
		if poisoned {
			e.dropSnap(snap)
		}
		if !poisoned || cancelled || ctx.Err() != nil ||
			!transient(res.diags) || attempt > s.cfg.Retries {
			return res
		}
		s.m.Retries.Add(1)
		if !s.backoff(ctx, attempt) {
			res.cancelled = true
			return res
		}
	}
}
