package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diskcache"
	"repro/internal/pipeline"
)

// latWindow is how many recent request latencies the percentile window
// keeps (a ring buffer; old samples fall off).
const latWindow = 4096

// counters is the server's hot-path instrumentation: plain atomics so
// request handling never contends on a stats lock.
type counters struct {
	Requests        atomic.Int64
	OK              atomic.Int64
	Degraded        atomic.Int64
	ClientErrors    atomic.Int64
	ServerErrors    atomic.Int64
	Cancelled       atomic.Int64
	Shed429         atomic.Int64
	Shed503         atomic.Int64
	BreakerRejects  atomic.Int64
	Retries         atomic.Int64
	PanicsRecovered atomic.Int64
	peakConc        atomic.Int64
	peakQueue       atomic.Int64

	latMu  sync.Mutex
	lats   [latWindow]time.Duration
	latIdx int
	latN   int
}

func (c *counters) observe(d time.Duration) {
	c.latMu.Lock()
	c.lats[c.latIdx] = d
	c.latIdx = (c.latIdx + 1) % latWindow
	if c.latN < latWindow {
		c.latN++
	}
	c.latMu.Unlock()
}

// percentiles returns the p50/p99 of the latency window (zeros when
// empty).
func (c *counters) percentiles() (p50, p99 time.Duration) {
	c.latMu.Lock()
	n := c.latN
	buf := make([]time.Duration, n)
	copy(buf, c.lats[:n])
	c.latMu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := func(p float64) int {
		i := int(p * float64(n-1))
		return i
	}
	return buf[idx(0.50)], buf[idx(0.99)]
}

// Metrics is a point-in-time view of the server's counters, suitable for
// JSON rendering (the /metrics endpoint and batfishd's expvar export).
type Metrics struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Snapshots       int     `json:"snapshots"`
	Requests        int64   `json:"requests"`
	OK              int64   `json:"ok"`
	Degraded        int64   `json:"degraded"`
	ClientErrors    int64   `json:"client_errors"`
	ServerErrors    int64   `json:"server_errors"`
	Cancelled       int64   `json:"cancelled"`
	Shed429         int64   `json:"shed_429"`
	Shed503         int64   `json:"shed_503"`
	BreakerRejects  int64   `json:"breaker_rejects"`
	BreakerTrips    int64   `json:"breaker_trips"`
	Retries         int64   `json:"retries"`
	PanicsRecovered int64   `json:"panics_recovered"`
	InFlight        int64   `json:"in_flight"`
	PeakInFlight    int64   `json:"peak_in_flight"`
	Queued          int64   `json:"queued"`
	PeakQueued      int64   `json:"peak_queued"`
	Draining        bool    `json:"draining"`
	P50Ms           float64 `json:"p50_ms"`
	P99Ms           float64 `json:"p99_ms"`

	Pipeline pipeline.Stats  `json:"pipeline"`
	Disk     diskcache.Stats `json:"disk"`

	// Cluster is populated by the cluster layer (SetClusterMetrics) when
	// this server is a cluster node; nil (omitted) otherwise.
	Cluster any `json:"cluster,omitempty"`
}

// SetClusterMetrics registers a callback whose result is embedded in the
// Cluster field of every Metrics snapshot. The cluster layer uses this to
// surface membership, failover, and forwarding counters through the same
// /metrics endpoint without the server importing the cluster package.
func (s *Server) SetClusterMetrics(fn func() any) {
	s.mu.Lock()
	s.clusterMetrics = fn
	s.mu.Unlock()
}

// Metrics snapshots the server's counters, pipeline stats, and the
// persistent cache tier's stats.
func (s *Server) Metrics() Metrics {
	p50, p99 := s.m.percentiles()
	var trips int64
	s.mu.Lock()
	n := len(s.snaps)
	for _, e := range s.snaps {
		_, t := e.br.snapshotState()
		trips += t
	}
	clusterFn := s.clusterMetrics
	s.mu.Unlock()
	var cluster any
	if clusterFn != nil {
		cluster = clusterFn()
	}
	return Metrics{
		UptimeSeconds:   time.Since(s.started).Seconds(),
		Snapshots:       n,
		Requests:        s.m.Requests.Load(),
		OK:              s.m.OK.Load(),
		Degraded:        s.m.Degraded.Load(),
		ClientErrors:    s.m.ClientErrors.Load(),
		ServerErrors:    s.m.ServerErrors.Load(),
		Cancelled:       s.m.Cancelled.Load(),
		Shed429:         s.m.Shed429.Load(),
		Shed503:         s.m.Shed503.Load(),
		BreakerRejects:  s.m.BreakerRejects.Load(),
		BreakerTrips:    trips,
		Retries:         s.m.Retries.Load(),
		PanicsRecovered: s.m.PanicsRecovered.Load(),
		InFlight:        s.cur.Load(),
		PeakInFlight:    s.m.peakConc.Load(),
		Queued:          s.queued.Load(),
		PeakQueued:      s.m.peakQueue.Load(),
		Draining:        s.draining.Load(),
		P50Ms:           float64(p50) / float64(time.Millisecond),
		P99Ms:           float64(p99) / float64(time.Millisecond),
		Pipeline:        s.pl.Stats(),
		Disk:            s.pl.DiskStats(),
		Cluster:         cluster,
	}
}
