package server

// Cluster-facing hooks. The cluster layer (internal/cluster) wraps a
// Server per member; these accessors expose exactly what routing,
// failover rehydration, and distributed sweeps need without the server
// importing the cluster package or duplicating its containment logic.

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/diskcache"
	"repro/internal/pipeline"
)

// Disk returns the server's persistent cache tier (nil when the server
// runs without one). In a cluster every member opens the same cache
// directory, making it the content-addressed artifact store a failover
// heir warm-starts from.
func (s *Server) Disk() *diskcache.Cache { return s.disk }

// HasSnapshot reports whether the server currently holds the named
// snapshot.
func (s *Server) HasSnapshot(name string) bool {
	_, ok := s.entry(name)
	return ok
}

// SnapshotSources returns a copy of the named snapshot's full source set
// (base texts with any edits applied — rehydrating from it flattens the
// edit chain but analyzes identically). ok is false for unknown names.
func (s *Server) SnapshotSources(name string) (configs map[string]string, ok bool) {
	e, found := s.entry(name)
	if !found {
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	configs = make(map[string]string, len(e.texts))
	for k, v := range e.texts {
		configs[k] = v
	}
	return configs, true
}

// SnapshotNames returns the sorted names of the snapshots this server
// currently holds.
func (s *Server) SnapshotNames() []string { return s.names() }

// SnapshotArtifactKeys returns the content-addressed keys of the named
// snapshot's disk-persistable artifacts — the per-device parse artifacts
// plus the data-plane artifact for its current options. This is what an
// heir pre-replicates so failover rehydration never re-parses. ok is
// false for unknown names and for entries whose live snapshot is torn
// down pending a rebuild.
func (s *Server) SnapshotArtifactKeys(name string) ([]pipeline.Key, bool) {
	e, found := s.entry(name)
	if !found {
		return nil, false
	}
	e.mu.Lock()
	snap := e.snap
	e.mu.Unlock()
	if snap == nil {
		return nil, false
	}
	return snap.ArtifactKeys(), true
}

// InstallSnapshot parses and publishes a snapshot from raw configs — the
// handleLoad engine path without the HTTP surface. The cluster layer uses
// it to rehydrate an inherited snapshot from the shared manifest after a
// member dies; parse and dataplane artifacts the dead member committed to
// the shared cache make the rebuild a warm start. Degradation is not an
// error (the snapshot is still published, matching handleLoad); a
// cancelled load is.
func (s *Server) InstallSnapshot(ctx context.Context, name string, configs map[string]string) error {
	if len(configs) == 0 {
		return fmt.Errorf("install %s: no configs", name)
	}
	snap := core.LoadTextWithContext(ctx, s.pl, configs)
	if snap.Cancelled() {
		s.m.Cancelled.Add(1)
		return fmt.Errorf("install %s: load cancelled: %w", name, ctx.Err())
	}
	snap.WithContext(nil)
	texts := make(map[string]string, len(configs))
	for k, v := range configs {
		texts[k] = v
	}
	s.putEntry(&snapEntry{name: name, texts: texts, snap: snap})
	return nil
}

// Admit takes an execution slot for cluster-internal work (forwarded
// class execution, failover rehydration), subject to the same bounded
// queue and drain rules as HTTP requests. The release func must be called
// exactly once when err is nil; a *ShedError carries the 429/503 +
// Retry-After the caller should relay.
func (s *Server) Admit(ctx context.Context) (release func(), err error) {
	return s.acquire(ctx)
}
