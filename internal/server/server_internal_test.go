package server

import (
	"testing"
	"time"

	"repro/internal/netgen"
)

// TestBreakerAbortReleasesProbe covers the neutral probe release: a
// half-open probe that ends without a service-quality verdict (shed,
// client error, client deadline) must free the probe slot without
// closing the breaker, and an abort on a closed breaker must not reset
// its consecutive-failure count.
func TestBreakerAbortReleasesProbe(t *testing.T) {
	const th = 2
	var b breaker

	// Trip it.
	b.record(th, false)
	b.record(th, false)
	if ok, _ := b.allow(th, time.Hour); ok {
		t.Fatal("open breaker admitted a request")
	}

	// Cooldown elapsed (zero cooldown): first arrival is the probe,
	// second is rejected while the probe is in flight.
	if ok, _ := b.allow(th, 0); !ok {
		t.Fatal("no half-open probe after cooldown")
	}
	if ok, _ := b.allow(th, 0); ok {
		t.Fatal("second probe admitted while one is in flight")
	}

	// Abort the probe: still half-open, but the slot is free again —
	// before the fix, probing stayed true and every allow returned false.
	b.abort(th)
	if st, _ := b.snapshotState(); st != "half-open" {
		t.Fatalf("state after aborted probe = %s, want half-open", st)
	}
	if ok, _ := b.allow(th, 0); !ok {
		t.Fatal("breaker wedged: no probe admitted after an aborted one")
	}
	b.record(th, true)
	if st, _ := b.snapshotState(); st != "closed" {
		t.Fatalf("state after successful probe = %s, want closed", st)
	}

	// Closed state: abort must not reset the failure count the way the
	// old record(success=true) call did.
	b.record(th, false)
	b.abort(th)
	b.record(th, false)
	if st, _ := b.snapshotState(); st != "open" {
		t.Fatalf("state = %s, want open: abort reset the failure count", st)
	}
}

// TestSnapshotForBaseCycle is the backstop for racing edits that weave a
// base cycle past handleEdit's ancestry check: rebuilding either entry
// must terminate (standalone from merged texts) instead of re-locking an
// entry mutex already held on the rebuild path and deadlocking.
func TestSnapshotForBaseCycle(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	fab := netgen.Fabric(netgen.FabricParams{Name: "cy", Spines: 1, Pods: 1,
		AggPerPod: 1, TorPerPod: 1, HostNetsPerTor: 1})
	texts := make(map[string]string, len(fab.Devices))
	for _, d := range fab.Devices {
		texts[d.Hostname] = d.Text
	}
	a := &snapEntry{name: "a", texts: texts, base: "b", changes: map[string]string{}}
	b := &snapEntry{name: "b", texts: texts, base: "a", changes: map[string]string{}}
	s.putEntry(a)
	s.putEntry(b)

	for _, e := range []*snapEntry{a, b} {
		done := make(chan error, 1)
		go func() {
			s.anMu.Lock()
			defer s.anMu.Unlock()
			_, err := s.snapshotFor(e)
			done <- err
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("rebuild %q: %v", e.name, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("rebuild %q deadlocked on the base cycle", e.name)
		}
	}
}
