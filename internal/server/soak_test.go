package server_test

import (
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/server"
)

// TestSoak is the `make soak` target: a short race-gated soak that drives
// a persistent-cache server with a mixed concurrent workload (questions,
// compares, diagnostics, metrics) under injected slowness, verifying the
// hardening invariants hold over time — admission bound respected, only
// expected statuses produced, clean drain with every in-flight request
// answered — and that a warm restart over the same cache directory serves
// from disk and answers byte-identically. EXPERIMENTS.md E12 records the
// measured hit and shed rates.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak runs via `make soak`")
	}
	// Mild injected slowness makes overload (and thus 429 shedding)
	// actually happen at this concurrency.
	defer faults.Activate(faults.New().
		Enable("server", "reachability", faults.Rule{Kind: faults.Sleep, Sleep: 2 * time.Millisecond}))()

	dir := t.TempDir()
	texts := smallFabric()
	cfg := server.Config{MaxConcurrent: 2, MaxQueue: 2, QueueWait: 5 * time.Millisecond,
		CacheDir: dir}
	srv, ts := newServer(t, cfg)
	tc := newTestClient(t, ts)
	tc.load("prod", texts)
	if resp, ar := tc.do(http.MethodPost, "/snapshots/prod/edit", map[string]any{
		"as": "candidate", "changes": map[string]string{
			"sm-p02-tor02": addRoute(t, texts["sm-p02-tor02"], "ip route 10.0.0.0 255.255.255.128 Null0")},
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("edit: %d %s", resp.StatusCode, ar.Error)
	}
	// Warm both snapshots and pin the reference answer.
	_, refAns := tc.do(http.MethodGet, "/snapshots/prod/reachability", nil)
	if refAns.ExitCode != server.ExitOK || refAns.Text == "" {
		t.Fatalf("reference answer: exit %d", refAns.ExitCode)
	}

	paths := []string{
		"/snapshots/prod/reachability",
		"/snapshots/prod/compare?with=candidate",
		"/snapshots/prod/diagnostics",
		"/metrics",
		"/snapshots/prod/service-reachable?dst=10.0.0.0/24&port=443",
	}
	const workers = 8
	deadline := time.Now().Add(1200 * time.Millisecond)
	var ok200, shed, other atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				resp, err := tc.c.Get(tc.base + paths[(w+i)%len(paths)])
				if err != nil {
					other.Add(1)
					continue
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					shed.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						other.Add(1)
					}
				default:
					other.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	m := srv.Metrics()
	t.Logf("soak: %d ok, %d shed, %d unexpected; peak in-flight %d, peak queued %d, p50 %.2fms p99 %.2fms",
		ok200.Load(), shed.Load(), other.Load(), m.PeakInFlight, m.PeakQueued, m.P50Ms, m.P99Ms)
	if other.Load() != 0 {
		t.Errorf("%d requests got unexpected statuses or malformed sheds", other.Load())
	}
	if ok200.Load() == 0 {
		t.Error("soak produced no successful answers")
	}
	if m.PeakInFlight > int64(cfg.MaxConcurrent) {
		t.Errorf("admission bound violated: peak %d > %d", m.PeakInFlight, cfg.MaxConcurrent)
	}
	if m.ServerErrors != 0 || m.PanicsRecovered != 0 {
		t.Errorf("soak hit server errors: errors=%d panics=%d", m.ServerErrors, m.PanicsRecovered)
	}
	// The answer never drifted under churn.
	if _, ar := tc.do(http.MethodGet, "/snapshots/prod/reachability", nil); ar.Text != refAns.Text {
		t.Error("answer drifted during soak")
	}
	// Clean drain.
	if err := srv.Drain(testCtx(t, 10*time.Second)); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}

	// Warm restart over the same cache directory: disk-tier hits for every
	// clean stage and a byte-identical answer.
	warm, warmTS := newServer(t, server.Config{CacheDir: dir})
	tc2 := newTestClient(t, warmTS)
	tc2.load("prod", texts)
	_, warmAns := tc2.do(http.MethodGet, "/snapshots/prod/reachability", nil)
	if warmAns.Text != refAns.Text {
		t.Error("warm restart answer differs from the soaked server's")
	}
	wm := warm.Metrics()
	if wm.Pipeline.Parse.DiskHits != int64(len(texts)) || wm.Pipeline.DataPlane.DiskHits != 1 {
		t.Errorf("warm restart hit rates: parse=%d/%d dataplane=%d/1",
			wm.Pipeline.Parse.DiskHits, len(texts), wm.Pipeline.DataPlane.DiskHits)
	}
	if wm.Disk.Quarantined != 0 {
		t.Errorf("soak left %d corrupt cache entries", wm.Disk.Quarantined)
	}
}
