package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ip4"
	"repro/internal/pipeline"
	"repro/internal/reach"
	"repro/internal/server"
	"repro/internal/sweep"
)

// sweepStreamLine mirrors the NDJSON lines of POST /snapshots/{name}/sweep.
type sweepStreamLine struct {
	Type       string         `json:"type"`
	Snapshot   string         `json:"snapshot"`
	Enumerated int            `json:"enumerated"`
	Classes    int            `json:"classes"`
	Executed   int            `json:"executed"`
	Pruned     int            `json:"pruned"`
	Verdict    *sweep.Verdict `json:"verdict"`
	Violations int            `json:"violations"`
	Degraded   bool           `json:"degraded"`
	ExitCode   int            `json:"exit_code"`
	Error      string         `json:"error"`
}

// TestSweepEndpointStreamsVerdicts runs a default k=1 link+node sweep over
// the small fabric and requires: a plan line, one verdict line per
// enumerated scenario (streamed, in class-completion order), a summary
// trailer with exit code 0, and verdicts byte-identical to an in-process
// sweep on an independent pipeline.
func TestSweepEndpointStreamsVerdicts(t *testing.T) {
	texts := smallFabric()
	_, ts := newServer(t, server.Config{RequestTimeout: 2 * time.Minute})
	tc := newTestClient(t, ts)
	tc.load("sm", texts)

	// Monitor one intra-pod flow (sm-p01-tor01's hosts → sm-p01-tor02's
	// host subnet) so blast-radius pruning has teeth: the spines and the
	// other pod fall outside the monitored cone. The dst prefix is
	// discovered from an in-process parse of the same texts.
	base := core.LoadTextWith(pipeline.New(pipeline.Config{}), texts)
	var dst string
	for _, in := range base.Net.Devices["sm-p01-tor02"].InterfaceNames() {
		if strings.HasPrefix(in, "host") {
			p := base.Net.Devices["sm-p01-tor02"].Interfaces[in].Addresses[0]
			dst = ip4.Prefix{Addr: p.Addr, Len: p.Len}.Canonical().String()
			break
		}
	}
	if dst == "" {
		t.Fatal("no host subnet on sm-p01-tor02")
	}
	body, _ := json.Marshal(map[string]any{
		"workers": 4, "src": []string{"sm-p01-tor01/host1"}, "dst": []string{dst}})
	resp, err := tc.c.Post(ts.URL+"/snapshots/sm/sweep", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}

	var plan, summary *sweepStreamLine
	var verdicts []sweep.Verdict
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line sweepStreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch line.Type {
		case "plan":
			if plan != nil || summary != nil || len(verdicts) > 0 {
				t.Fatal("plan line must come first, once")
			}
			plan = &line
		case "verdict":
			if line.Verdict == nil {
				t.Fatal("verdict line without payload")
			}
			verdicts = append(verdicts, *line.Verdict)
		case "summary":
			summary = &line
		default:
			t.Fatalf("unknown line type %q", line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if plan == nil || summary == nil {
		t.Fatal("stream missing plan or summary line")
	}
	if summary.ExitCode != server.ExitOK || summary.Degraded {
		t.Fatalf("summary exit %d degraded=%v error=%q", summary.ExitCode, summary.Degraded, summary.Error)
	}
	if plan.Enumerated == 0 || plan.Enumerated != summary.Enumerated {
		t.Fatalf("plan enumerated %d vs summary %d", plan.Enumerated, summary.Enumerated)
	}
	if len(verdicts) != summary.Enumerated {
		t.Fatalf("streamed %d verdicts for %d scenarios", len(verdicts), summary.Enumerated)
	}
	if summary.Executed+summary.Pruned != summary.Enumerated || summary.Pruned == 0 {
		t.Fatalf("executed %d + pruned %d != enumerated %d (or nothing pruned)",
			summary.Executed, summary.Pruned, summary.Enumerated)
	}
	if summary.Violations == 0 {
		t.Error("a full node sweep must violate some flow (downing a ToR strands its hosts)")
	}

	// The streamed verdicts, canonically ordered, must be byte-identical
	// to an in-process sweep of the same spec on an independent pipeline.
	dstPrefix, err := ip4.ParsePrefix(dst)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sweep.Run(context.Background(), base, sweep.Spec{Workers: 2,
		Sources: []reach.SourceLoc{{Device: "sm-p01-tor01", Iface: "host1"}},
		DstIPs:  []ip4.Prefix{dstPrefix}})
	if err != nil {
		t.Fatal(err)
	}
	sweep.SortVerdicts(verdicts)
	sweep.SortVerdicts(ref.Verdicts)
	got, _ := json.Marshal(verdicts)
	want, _ := json.Marshal(ref.Verdicts)
	if !bytes.Equal(got, want) {
		t.Errorf("server verdicts differ from in-process sweep:\n got %s\nwant %s", got, want)
	}
}

// TestSweepEndpointErrors covers the non-streaming failure paths: unknown
// snapshot (404), malformed spec (400), and bad timeout (400) — all before
// headers commit, so they use the JSON envelope with CLI exit codes.
func TestSweepEndpointErrors(t *testing.T) {
	_, ts := newServer(t, server.Config{})
	tc := newTestClient(t, ts)
	tc.load("sm", smallFabric())

	resp, ar := tc.do(http.MethodPost, "/snapshots/nope/sweep", nil)
	if resp.StatusCode != http.StatusNotFound || ar.ExitCode != server.ExitUsage {
		t.Errorf("unknown snapshot: status %d exit %d", resp.StatusCode, ar.ExitCode)
	}
	resp, ar = tc.do(http.MethodPost, "/snapshots/sm/sweep",
		map[string]any{"fail": []string{"gremlins"}})
	if resp.StatusCode != http.StatusBadRequest || ar.ExitCode != server.ExitUsage {
		t.Errorf("bad fail kind: status %d exit %d (%s)", resp.StatusCode, ar.ExitCode, ar.Error)
	}
	resp, ar = tc.do(http.MethodPost, "/snapshots/sm/sweep",
		map[string]any{"k": 3})
	if resp.StatusCode != http.StatusBadRequest || ar.ExitCode != server.ExitUsage {
		t.Errorf("k=3: status %d exit %d (%s)", resp.StatusCode, ar.ExitCode, ar.Error)
	}
	resp, ar = tc.do(http.MethodPost, "/snapshots/sm/sweep?timeout=bogus", nil)
	if resp.StatusCode != http.StatusBadRequest || ar.ExitCode != server.ExitUsage {
		t.Errorf("bad timeout: status %d exit %d", resp.StatusCode, ar.ExitCode)
	}
}
