package server

import (
	"fmt"
	"strings"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/diag"
)

// The renderers turn question results into the exact text the CLI prints,
// so a scripted client can diff service answers against batfish runs (and
// the end-to-end tests can assert byte-identical output between the HTTP
// API and the in-process API).

// diagStrings renders diagnostics for the JSON envelope.
func diagStrings(ds []diag.Diagnostic) []string {
	if len(ds) == 0 {
		return nil
	}
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.String()
	}
	return out
}

// RenderFlows renders reachability results in the CLI's format.
func RenderFlows(rs []core.FlowResult) string {
	var b strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&b, "%s/%s:\n", r.Source.Device, r.Source.Iface)
		if r.HasPositive {
			fmt.Fprintf(&b, "  delivered example: %v\n", r.PositiveExample)
		}
		if r.HasNegative {
			fmt.Fprintf(&b, "  failed example:    %v\n", r.NegativeExample)
			for _, t := range r.Traces {
				fmt.Fprintln(&b, "  "+strings.ReplaceAll(t.String(), "\n", "\n  "))
			}
		}
	}
	return b.String()
}

// RenderService renders service-reachability results, one client per
// line.
func RenderService(rs []core.ServiceReachableResult) string {
	var b strings.Builder
	for _, r := range rs {
		status := "UNREACHABLE"
		if r.OK {
			status = "ok"
		}
		fmt.Fprintf(&b, "%s/%s: %s", r.Client.Device, r.Client.Iface, status)
		if r.HasEx {
			fmt.Fprintf(&b, " example %v", r.Example)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// RenderDiffs renders differential reachability results.
func RenderDiffs(ds []core.DifferentialFlows) string {
	if len(ds) == 0 {
		return "no differences\n"
	}
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintf(&b, "%s/%s:\n", d.Source.Device, d.Source.Iface)
		if d.Broken != bdd.False {
			fmt.Fprintf(&b, "  flows broken by change")
			if d.HasBroken {
				fmt.Fprintf(&b, ", example %v", d.BrokenEx)
			}
			fmt.Fprintln(&b)
		}
		if d.NewlyArrive != bdd.False {
			fmt.Fprintln(&b, "  flows newly delivered by change")
		}
	}
	return b.String()
}
