package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/diag"
	"repro/internal/faults"
	"repro/internal/ip4"
	"repro/internal/sweep"
)

// sweepBody is the POST /snapshots/{name}/sweep request body. All fields
// are optional; the zero body sweeps k=1 link and node failures from the
// snapshot's host-facing interfaces.
type sweepBody struct {
	K            int      `json:"k"`
	Fail         []string `json:"fail"`
	Src          []string `json:"src"`
	Dst          []string `json:"dst"`
	Workers      int      `json:"workers"`
	MaxScenarios int      `json:"max_scenarios"`
}

// sweepLine is one NDJSON line of the streaming sweep response. The first
// line has Type "plan" (enumeration and pruning counts, before any
// execution), each completed scenario produces a "verdict" line as its
// equivalence class finishes, and the final "summary" line carries the
// CLI-equivalent exit code — the stream's trailer replaces the
// X-Batfish-Exit-Code header, which cannot be set once streaming begins.
type sweepLine struct {
	Type     string `json:"type"`
	Snapshot string `json:"snapshot,omitempty"`

	// plan + summary fields
	Enumerated int `json:"enumerated,omitempty"`
	Classes    int `json:"classes,omitempty"`
	Executed   int `json:"executed,omitempty"`
	Pruned     int `json:"pruned,omitempty"`

	// verdict payload
	Verdict *sweep.Verdict `json:"verdict,omitempty"`

	// summary fields
	Violations int    `json:"violations,omitempty"`
	Degraded   bool   `json:"degraded,omitempty"`
	ExitCode   int    `json:"exit_code,omitempty"`
	Error      string `json:"error,omitempty"`
}

// handleSweep runs a failure-scenario sweep over a named snapshot,
// streaming one NDJSON verdict line per scenario as equivalence classes
// complete. Planning (enumeration, blast-radius classification, the
// baseline run) touches the shared BDD factory and therefore holds anMu;
// execution runs on private per-worker pipelines, so the lock is released
// before the first verdict is computed and concurrent questions proceed
// while the sweep executes. The request holds one admission slot for its
// whole duration.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.entry(name)
	if !ok {
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusNotFound, apiResponse{ExitCode: ExitUsage, Error: "no snapshot " + name})
		return
	}
	spec, err := s.parseSweepBody(r)
	if err != nil {
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage, Error: err.Error()})
		return
	}
	if ok, retryAfter := e.br.allow(s.cfg.BreakerThreshold, s.cfg.BreakerCooldown); !ok {
		s.m.BreakerRejects.Add(1)
		s.m.Shed503.Add(1)
		writeShed(w, http.StatusServiceUnavailable, retryAfter,
			fmt.Sprintf("circuit breaker open for snapshot %s", name))
		return
	}
	ctx, cancel, err := s.reqContext(r)
	if err != nil {
		e.br.abort(s.cfg.BreakerThreshold)
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage, Error: err.Error()})
		return
	}
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		e.br.abort(s.cfg.BreakerThreshold)
		s.rejectAdmission(w, err)
		return
	}
	defer release()

	faults.Fire("server", "sweep")

	// Plan under anMu with the same context hygiene as runQuestion: bind
	// the request context for the duration, unbind on the clean path, and
	// discard the snapshot when the run poisoned it.
	var plan *sweep.Plan
	var planErr error
	s.anMu.Lock()
	snap, err := s.snapshotFor(e)
	if err != nil {
		s.anMu.Unlock()
		e.br.record(s.cfg.BreakerThreshold, false)
		s.m.ServerErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, apiResponse{ExitCode: ExitError, Error: err.Error()})
		return
	}
	before := len(snap.Diags())
	snap.WithContext(ctx)
	panicDiag := diag.Capture(diag.StageQuestion, "sweep", func() {
		snap.Analysis().WithContext(ctx)
		plan, planErr = sweep.NewPlan(snap, spec)
	})
	snap.WithContext(nil)
	cancelled := snap.Cancelled()
	if !cancelled && panicDiag == nil {
		snap.Analysis().WithContext(nil)
	}
	newDiags := snap.Diags()[before:]
	s.anMu.Unlock()

	switch {
	case cancelled:
		e.dropSnap(snap)
		e.br.abort(s.cfg.BreakerThreshold)
		s.m.Cancelled.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, apiResponse{Snapshot: name,
			ExitCode: ExitCancelled, Error: "sweep planning cancelled by deadline"})
		return
	case panicDiag != nil || len(newDiags) > 0:
		if panicDiag != nil {
			s.m.PanicsRecovered.Add(1)
			newDiags = append(newDiags, *panicDiag)
		}
		e.dropSnap(snap)
		e.br.record(s.cfg.BreakerThreshold, false)
		s.m.Degraded.Add(1)
		writeJSON(w, http.StatusOK, apiResponse{Snapshot: name, ExitCode: ExitDegraded,
			Diags: diagStrings(newDiags), Error: "sweep planning degraded the snapshot"})
		return
	case planErr != nil:
		e.br.abort(s.cfg.BreakerThreshold)
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, apiResponse{Snapshot: name,
			ExitCode: ExitUsage, Error: "sweep: " + planErr.Error()})
		return
	}

	// Stream. From here on, status and headers are committed: outcomes
	// (including cancellation) travel in the trailing summary line.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emitLine := func(l sweepLine) {
		enc.Encode(l) //nolint:errcheck // client went away; sweep still completes
		if flusher != nil {
			flusher.Flush()
		}
	}
	emitLine(sweepLine{Type: "plan", Snapshot: name,
		Enumerated: plan.Enumerated(), Classes: plan.Classes()})

	res, execErr := plan.Execute(ctx, func(v sweep.Verdict) {
		emitLine(sweepLine{Type: "verdict", Verdict: &v})
	})

	summary := sweepLine{Type: "summary", Snapshot: name}
	if res != nil {
		summary.Enumerated = res.Enumerated
		summary.Classes = res.Classes
		summary.Executed = res.Executed
		summary.Pruned = res.Pruned
		summary.Violations = res.Violations
		summary.Degraded = res.Degraded
	}
	switch {
	case execErr != nil:
		e.br.abort(s.cfg.BreakerThreshold)
		s.m.Cancelled.Add(1)
		summary.ExitCode = ExitCancelled
		summary.Error = "sweep cancelled: " + execErr.Error()
	case res.Degraded:
		e.br.record(s.cfg.BreakerThreshold, false)
		s.m.Degraded.Add(1)
		summary.ExitCode = ExitDegraded
	default:
		e.br.record(s.cfg.BreakerThreshold, true)
		s.m.OK.Add(1)
		summary.ExitCode = ExitOK
	}
	emitLine(summary)
}

// parseSweepBody builds the sweep.Spec from the request body. An empty
// body is valid and yields the default spec.
func (s *Server) parseSweepBody(r *http.Request) (sweep.Spec, error) {
	var body sweepBody
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err := dec.Decode(&body); err != nil && !errors.Is(err, io.EOF) {
		return sweep.Spec{}, fmt.Errorf("bad body: %v", err)
	}
	spec := sweep.Spec{K: body.K, Workers: body.Workers, MaxScenarios: body.MaxScenarios}
	for _, kind := range body.Fail {
		switch kind {
		case "links":
			spec.Links = true
		case "nodes":
			spec.Nodes = true
		case "sessions":
			spec.Sessions = true
		default:
			return spec, fmt.Errorf("unknown fail kind %q (want links, nodes, or sessions)", kind)
		}
	}
	srcs, err := parseSourceLocs(body.Src)
	if err != nil {
		return spec, err
	}
	spec.Sources = srcs
	for _, c := range body.Dst {
		p, err := ip4.ParsePrefix(c)
		if err != nil {
			return spec, fmt.Errorf("bad dst %q: %v", c, err)
		}
		spec.DstIPs = append(spec.DstIPs, p)
	}
	return spec, nil
}
