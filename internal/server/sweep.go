package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/diag"
	"repro/internal/faults"
	"repro/internal/ip4"
	"repro/internal/sweep"
)

// sweepBody is the POST /snapshots/{name}/sweep request body. All fields
// are optional; the zero body sweeps k=1 link and node failures from the
// snapshot's host-facing interfaces.
type sweepBody struct {
	K            int      `json:"k"`
	Fail         []string `json:"fail"`
	Src          []string `json:"src"`
	Dst          []string `json:"dst"`
	Workers      int      `json:"workers"`
	MaxScenarios int      `json:"max_scenarios"`
}

// sweepLine is one NDJSON line of the streaming sweep response. The first
// line has Type "plan" (enumeration and pruning counts, before any
// execution), each completed scenario produces a "verdict" line as its
// equivalence class finishes, and the final "summary" line carries the
// CLI-equivalent exit code — the stream's trailer replaces the
// X-Batfish-Exit-Code header, which cannot be set once streaming begins.
type sweepLine struct {
	Type     string `json:"type"`
	Snapshot string `json:"snapshot,omitempty"`

	// plan + summary fields
	Enumerated int `json:"enumerated,omitempty"`
	Classes    int `json:"classes,omitempty"`
	Executed   int `json:"executed,omitempty"`
	Pruned     int `json:"pruned,omitempty"`

	// verdict payload
	Verdict *sweep.Verdict `json:"verdict,omitempty"`

	// summary fields
	Violations int    `json:"violations,omitempty"`
	Degraded   bool   `json:"degraded,omitempty"`
	ExitCode   int    `json:"exit_code,omitempty"`
	Error      string `json:"error,omitempty"`
}

// handleSweep runs a failure-scenario sweep over a named snapshot,
// streaming one NDJSON verdict line per scenario as equivalence classes
// complete. Planning (enumeration, blast-radius classification, the
// baseline run) touches the shared BDD factory and therefore holds anMu;
// execution runs on private per-worker pipelines, so the lock is released
// before the first verdict is computed and concurrent questions proceed
// while the sweep executes. The request holds one admission slot for its
// whole duration.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.entry(name)
	if !ok {
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusNotFound, apiResponse{ExitCode: ExitUsage, Error: "no snapshot " + name})
		return
	}
	spec, err := ParseSweepBody(r)
	if err != nil {
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage, Error: err.Error()})
		return
	}
	if ok, retryAfter := e.br.allow(s.cfg.BreakerThreshold, s.cfg.BreakerCooldown); !ok {
		s.m.BreakerRejects.Add(1)
		s.m.Shed503.Add(1)
		writeShed(w, http.StatusServiceUnavailable, retryAfter,
			fmt.Sprintf("circuit breaker open for snapshot %s", name))
		return
	}
	ctx, cancel, err := s.reqContext(r)
	if err != nil {
		e.br.abort(s.cfg.BreakerThreshold)
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, apiResponse{ExitCode: ExitUsage, Error: err.Error()})
		return
	}
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		e.br.abort(s.cfg.BreakerThreshold)
		s.rejectAdmission(w, err)
		return
	}
	defer release()

	faults.Fire("server", "sweep")

	po := s.planSweep(ctx, e, spec)
	switch {
	case po.snapErr != nil:
		e.br.record(s.cfg.BreakerThreshold, false)
		s.m.ServerErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, apiResponse{ExitCode: ExitError, Error: po.snapErr.Error()})
		return
	case po.cancelled:
		e.br.abort(s.cfg.BreakerThreshold)
		s.m.Cancelled.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, apiResponse{Snapshot: name,
			ExitCode: ExitCancelled, Error: "sweep planning cancelled by deadline"})
		return
	case po.panicked || len(po.diags) > 0:
		if po.panicked {
			s.m.PanicsRecovered.Add(1)
		}
		e.br.record(s.cfg.BreakerThreshold, false)
		s.m.Degraded.Add(1)
		writeJSON(w, http.StatusOK, apiResponse{Snapshot: name, ExitCode: ExitDegraded,
			Diags: diagStrings(po.diags), Error: "sweep planning degraded the snapshot"})
		return
	case po.planErr != nil:
		e.br.abort(s.cfg.BreakerThreshold)
		s.m.ClientErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, apiResponse{Snapshot: name,
			ExitCode: ExitUsage, Error: "sweep: " + po.planErr.Error()})
		return
	}
	plan := po.plan

	// Stream. From here on, status and headers are committed: outcomes
	// (including cancellation) travel in the trailing summary line.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emitLine := func(l sweepLine) {
		enc.Encode(l) //nolint:errcheck // client went away; sweep still completes
		if flusher != nil {
			flusher.Flush()
		}
	}
	emitLine(sweepLine{Type: "plan", Snapshot: name,
		Enumerated: plan.Enumerated(), Classes: plan.Classes()})

	res, execErr := plan.Execute(ctx, func(v sweep.Verdict) {
		emitLine(sweepLine{Type: "verdict", Verdict: &v})
	})

	summary := sweepLine{Type: "summary", Snapshot: name}
	if res != nil {
		summary.Enumerated = res.Enumerated
		summary.Classes = res.Classes
		summary.Executed = res.Executed
		summary.Pruned = res.Pruned
		summary.Violations = res.Violations
		summary.Degraded = res.Degraded
	}
	switch {
	case execErr != nil:
		e.br.abort(s.cfg.BreakerThreshold)
		s.m.Cancelled.Add(1)
		summary.ExitCode = ExitCancelled
		summary.Error = "sweep cancelled: " + execErr.Error()
	case res.Degraded:
		e.br.record(s.cfg.BreakerThreshold, false)
		s.m.Degraded.Add(1)
		summary.ExitCode = ExitDegraded
	default:
		e.br.record(s.cfg.BreakerThreshold, true)
		s.m.OK.Add(1)
		summary.ExitCode = ExitOK
	}
	emitLine(summary)
}

// sweepPlanOutcome is what planning a sweep under anMu produced. Exactly
// one of the failure fields is meaningful; plan is non-nil only when all
// are zero.
type sweepPlanOutcome struct {
	plan      *sweep.Plan
	snapErr   error             // snapshot rebuild failed
	cancelled bool              // context expired during planning
	panicked  bool              // planning panicked (recovered; diag appended)
	diags     []diag.Diagnostic // diagnostics planning added (degradation)
	planErr   error             // spec rejected by the planner (client error)
}

// planSweep plans a failure sweep under anMu with the same context
// hygiene as runQuestion: bind the request context for the duration,
// unbind on the clean path, and discard the snapshot when the run
// poisoned it. It is the shared core of handleSweep and PlanSweep; it
// touches no breaker and writes no response.
func (s *Server) planSweep(ctx context.Context, e *snapEntry, spec sweep.Spec) sweepPlanOutcome {
	s.anMu.Lock()
	snap, err := s.snapshotFor(e)
	if err != nil {
		s.anMu.Unlock()
		return sweepPlanOutcome{snapErr: err}
	}
	var plan *sweep.Plan
	var planErr error
	before := len(snap.Diags())
	snap.WithContext(ctx)
	panicDiag := diag.Capture(diag.StageQuestion, "sweep", func() {
		snap.Analysis().WithContext(ctx)
		plan, planErr = sweep.NewPlan(snap, spec)
	})
	snap.WithContext(nil)
	cancelled := snap.Cancelled()
	if !cancelled && panicDiag == nil {
		snap.Analysis().WithContext(nil)
	}
	newDiags := snap.Diags()[before:]
	s.anMu.Unlock()

	out := sweepPlanOutcome{cancelled: cancelled, diags: newDiags, planErr: planErr}
	if panicDiag != nil {
		out.panicked = true
		out.diags = append(out.diags, *panicDiag)
	}
	if cancelled || out.panicked || len(out.diags) > 0 {
		e.dropSnap(snap)
		return out
	}
	if planErr != nil {
		return out
	}
	out.plan = plan
	return out
}

// Sentinel errors PlanSweep wraps its outcomes in, so the cluster layer
// can map them onto wire statuses without parsing strings.
var (
	// ErrUnknownSnapshot reports a snapshot name this server doesn't hold.
	ErrUnknownSnapshot = errors.New("unknown snapshot")
	// ErrSweepDegraded reports that planning degraded the snapshot.
	ErrSweepDegraded = errors.New("sweep planning degraded the snapshot")
)

// PlanSweep plans a failure sweep over a named snapshot on behalf of the
// cluster layer (the owner planning a distributed sweep, or a member
// replanning a forwarded class subset — NewPlan is deterministic, so both
// sides derive identical class IDs). Unlike handleSweep it leaves the
// snapshot's circuit breaker alone: the breaker guards the public HTTP
// surface, and cluster-internal execution must not trip it.
func (s *Server) PlanSweep(ctx context.Context, name string, spec sweep.Spec) (*sweep.Plan, error) {
	e, ok := s.entry(name)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSnapshot, name)
	}
	po := s.planSweep(ctx, e, spec)
	switch {
	case po.snapErr != nil:
		return nil, po.snapErr
	case po.cancelled:
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sweep planning cancelled: %w", err)
		}
		return nil, fmt.Errorf("sweep planning cancelled: %w", context.Canceled)
	case po.panicked || len(po.diags) > 0:
		if po.panicked {
			s.m.PanicsRecovered.Add(1)
		}
		s.m.Degraded.Add(1)
		return nil, fmt.Errorf("%w: %s", ErrSweepDegraded, strings.Join(diagStrings(po.diags), "; "))
	case po.planErr != nil:
		return nil, po.planErr
	}
	return po.plan, nil
}

// ParseSweepBody builds the sweep.Spec from the request body. An empty
// body is valid and yields the default spec. Exported so the cluster
// layer's sweep routing decodes forwarded bodies with the exact grammar
// the local handler uses.
func ParseSweepBody(r *http.Request) (sweep.Spec, error) {
	var body sweepBody
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err := dec.Decode(&body); err != nil && !errors.Is(err, io.EOF) {
		return sweep.Spec{}, fmt.Errorf("bad body: %v", err)
	}
	spec := sweep.Spec{K: body.K, Workers: body.Workers, MaxScenarios: body.MaxScenarios}
	for _, kind := range body.Fail {
		switch kind {
		case "links":
			spec.Links = true
		case "nodes":
			spec.Nodes = true
		case "sessions":
			spec.Sessions = true
		default:
			return spec, fmt.Errorf("unknown fail kind %q (want links, nodes, or sessions)", kind)
		}
	}
	srcs, err := parseSourceLocs(body.Src)
	if err != nil {
		return spec, err
	}
	spec.Sources = srcs
	for _, c := range body.Dst {
		p, err := ip4.ParsePrefix(c)
		if err != nil {
			return spec, fmt.Errorf("bad dst %q: %v", c, err)
		}
		spec.DstIPs = append(spec.DstIPs, p)
	}
	return spec, nil
}
