package server

import (
	"sync"
	"time"
)

// breakerState is the classic three-state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-snapshot circuit breaker over question outcomes. A
// service-quality failure (recovered panic, budget trip — not a client's
// own deadline) counts against the snapshot; BreakerThreshold consecutive
// failures trip it open, shedding questions with 503 + Retry-After until
// the cooldown passes. The first arrival after the cooldown is admitted
// as a half-open probe: its success closes the breaker, its failure
// re-opens it for a fresh cooldown.
type breaker struct {
	mu       sync.Mutex
	state    breakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
	trips    int64
}

// allow decides whether a question may proceed. When it returns false,
// retryAfter is the suggested client backoff. threshold<=0 disables the
// breaker entirely.
func (b *breaker) allow(threshold int, cooldown time.Duration) (ok bool, retryAfter time.Duration) {
	if threshold <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if rem := cooldown - time.Since(b.openedAt); rem > 0 {
			return false, rem
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, 0
	default: // half-open
		if b.probing {
			return false, cooldown
		}
		b.probing = true
		return true, 0
	}
}

// abort neutrally releases a half-open probe that never produced a
// service-quality signal — the request was shed, rejected for a client
// error, or cancelled by the client's own deadline before (or while)
// touching the snapshot. The probe slot is freed so the next arrival is
// admitted as a fresh probe; no success or failure is counted, and a
// closed breaker's consecutive-failure count is left untouched.
func (b *breaker) abort(threshold int) {
	if threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
}

// record feeds one question outcome back into the machine.
func (b *breaker) record(threshold int, success bool) {
	if threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if success {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= threshold {
			b.state = breakerOpen
			b.openedAt = time.Now()
			b.trips++
		}
	case breakerHalfOpen:
		b.probing = false
		if success {
			b.state = breakerClosed
			b.fails = 0
		} else {
			b.state = breakerOpen
			b.openedAt = time.Now()
			b.trips++
		}
	case breakerOpen:
		// A request admitted before the trip finished late; ignore.
	}
}

// snapshotState reports the state for diagnostics/metrics.
func (b *breaker) snapshotState() (state string, trips int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		state = "open"
	case breakerHalfOpen:
		state = "half-open"
	default:
		state = "closed"
	}
	return state, b.trips
}
