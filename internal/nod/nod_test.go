package nod

import (
	"testing"

	"repro/internal/acl"
	"repro/internal/config"
	"repro/internal/dataplane"
	"repro/internal/ip4"
	"repro/internal/testnet"
	"repro/internal/traceroute"
)

func run(t *testing.T, net *config.Network) (*dataplane.Result, *Encoder) {
	t.Helper()
	dp := dataplane.Run(net, dataplane.Options{})
	if !dp.Converged {
		t.Fatalf("dataplane did not converge: %v", dp.Warnings)
	}
	return dp, New(dp)
}

func TestReachableLine(t *testing.T) {
	dp, e := run(t, testnet.Line3())
	ok, p, err := e.Reachable("r1", "r3", 6)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("r1 should reach r3")
	}
	// Witness must actually be accepted at r3 per the concrete engine.
	tr := traceroute.New(dp)
	traces := tr.Run("r1", config.DefaultVRF, "", p)
	found := false
	for _, trc := range traces {
		if trc.Disposition == traceroute.Accepted && trc.FinalNode == "r3" {
			found = true
		}
	}
	if !found {
		t.Errorf("witness %v not accepted at r3: %v", p, traces)
	}
}

func TestUnreachableWhenFiltered(t *testing.T) {
	// Block everything to r3's address on r2's egress: no packet reaches.
	net := testnet.Line3()
	r2 := net.Devices["r2"]
	r2.ACLs["BLOCK"] = aclDenyTo("10.0.23.3/32", "192.168.3.0/24")
	r2.Interfaces["eth1"].OutACL = "BLOCK"
	_, e := run(t, net)
	if ok, p, _ := e.Reachable("r1", "r3", 6); ok {
		t.Fatalf("blocked path should be unreachable, witness %v", p)
	}
	// r2 itself is still reachable.
	if ok, _, _ := e.Reachable("r1", "r2", 6); !ok {
		t.Error("r2 should remain reachable")
	}
}

// aclDenyTo builds an ACL denying traffic to the given destination
// prefixes and permitting everything else.
func aclDenyTo(prefixes ...string) *acl.ACL {
	deny := acl.NewLine(acl.Deny, "deny to protected")
	for _, p := range prefixes {
		deny.DstIPs = append(deny.DstIPs, ip4.MustParsePrefix(p))
	}
	permit := acl.NewLine(acl.Permit, "permit rest")
	return &acl.ACL{Name: "BLOCK", Lines: []acl.Line{deny, permit}}
}

func TestMultipathCleanDiamond(t *testing.T) {
	_, e := run(t, testnet.Diamond())
	if vs, err := e.MultipathConsistency(7); err != nil || len(vs) != 0 {
		t.Errorf("clean diamond should be consistent, got %v", vs)
	}
}

func TestMultipathBrokenBranch(t *testing.T) {
	dp, e := run(t, testnet.ECMPWithBrokenBranch())
	vs, err := e.MultipathConsistency(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("broken branch should violate multipath consistency")
	}
	// Verify a violation witness concretely: from its start, traceroute
	// must produce both a delivered and a dropped branch.
	tr := traceroute.New(dp)
	checked := false
	for _, v := range vs {
		if v.Start != "r1" {
			continue
		}
		traces := tr.Run(v.Start, config.DefaultVRF, "", v.Packet)
		del, drop := false, false
		for _, trc := range traces {
			if trc.Disposition.Success() {
				del = true
			} else {
				drop = true
			}
		}
		if !del || !drop {
			t.Errorf("witness %v from %s: delivered=%v dropped=%v traces=%v",
				v.Packet, v.Start, del, drop, traces)
		}
		checked = true
	}
	if !checked {
		t.Errorf("no violation at r1: %v", vs)
	}
}

func TestWitnessRespectsACLPorts(t *testing.T) {
	// Figure 2: the only packets from r1 that reach P3's subnet are ssh.
	net := testnet.Figure2()
	dp, e := run(t, net)
	_ = dp
	// r3 owns 10.0.3.1; reaching acc:r3 via the ACL'd i3 path from r1
	// requires dst port 22 for dst in P3... but r3 is also reachable via
	// r2 (default routes), so instead verify reachability is found and
	// the chain machinery handles the ACL by blocking port-80-only paths:
	ok, _, err := e.Reachable("r1", "r3", 8)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("r3 should be reachable from r1")
	}
}

func TestNoRouteIsolated(t *testing.T) {
	net := config.NewNetwork()
	d := testnet.Dev(net, "lonely")
	testnet.Iface(d, "eth0", "10.0.0.1/24")
	d2 := testnet.Dev(net, "other")
	testnet.Iface(d2, "eth0", "172.16.0.1/24")
	_, e := run(t, net)
	if ok, _, _ := e.Reachable("lonely", "other", 4); ok {
		t.Error("disconnected devices should be unreachable")
	}
}
