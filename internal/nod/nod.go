// Package nod is the "Network Optimized Datalog"-style verification
// baseline: it encodes the network's forwarding behavior as a CNF formula
// (a bounded unrolling of the forwarding relation over a symbolic packet)
// and answers reachability and multipath-consistency queries with the CDCL
// solver in package sat. This reproduces the original Batfish's Stage 3
// architecture (paper §2: NoD + Z3), the baseline that the BDD engine's
// 12x verification speedup in Figure 3 is measured against.
//
// The model covers the same forwarding semantics as the BDD engine for the
// protocol-free data plane: exact longest-prefix matching, ECMP,
// own-IP acceptance, connected-subnet delivery, null routes, and
// interface ACLs with prefix, protocol, and port-range matches. (NAT and
// zone firewalls are outside this baseline, as they were for NoD.)
package nod

import (
	"fmt"
	"sort"

	"repro/internal/acl"
	"repro/internal/config"
	"repro/internal/dataplane"
	"repro/internal/fib"
	"repro/internal/hdr"
	"repro/internal/ip4"
	"repro/internal/sat"
)

// Disposition labels for terminal locations; aligned with the other two
// engines so verdicts are directly comparable.
const (
	SinkAccepted  = "accepted"
	SinkDelivered = "delivered" // host delivery or exits network
	SinkDenied    = "denied"
	SinkNoRoute   = "no-route"
	SinkNull      = "null-routed"
)

// Encoder builds CNF encodings over a computed data plane.
type Encoder struct {
	dp    *dataplane.Result
	nodes []string // device names, sorted
}

// New creates an encoder.
func New(dp *dataplane.Result) *Encoder {
	return &Encoder{dp: dp, nodes: dp.Network.DeviceNames()}
}

// cnf is one query's growing formula: a solver plus the shared symbolic
// packet and memoized structure variables.
type cnf struct {
	s  *sat.Solver
	dp *dataplane.Result

	// err records the first encoding error (e.g. an unsupported header
	// field); the affected constraint encodes as "matches nothing" and the
	// query entry points surface the error instead of panicking.
	err error

	// Packet bits, MSB first.
	dstIP, srcIP     []int
	dstPort, srcPort []int
	proto            []int

	prefixMatch map[string]int // field-in-prefix vars, keyed by field+prefix
	aclPermit   map[string]int // device/acl permit vars
	rangeVars   map[string]int
}

func newCNF(dp *dataplane.Result) *cnf {
	c := &cnf{
		s: sat.New(), dp: dp,
		prefixMatch: make(map[string]int),
		aclPermit:   make(map[string]int),
		rangeVars:   make(map[string]int),
	}
	alloc := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = c.s.NewVar()
		}
		return out
	}
	c.dstIP = alloc(32)
	c.srcIP = alloc(32)
	c.dstPort = alloc(16)
	c.srcPort = alloc(16)
	c.proto = alloc(8)
	return c
}

func lit(v int, neg bool) sat.Lit { return sat.MkLit(v, neg) }

// freshTrue returns a var constrained true (used as constant).
func (c *cnf) constTrue() int {
	v := c.s.NewVar()
	c.s.AddClause(lit(v, false))
	return v
}

func (c *cnf) constFalse() int {
	v := c.s.NewVar()
	c.s.AddClause(lit(v, true))
	return v
}

// andVar returns a var equivalent to the conjunction of the literals.
func (c *cnf) andVar(ls ...sat.Lit) int {
	v := c.s.NewVar()
	// v -> each l
	for _, l := range ls {
		c.s.AddClause(lit(v, true), l)
	}
	// all l -> v
	cl := make([]sat.Lit, 0, len(ls)+1)
	for _, l := range ls {
		cl = append(cl, l.Not())
	}
	cl = append(cl, lit(v, false))
	c.s.AddClause(cl...)
	return v
}

// orVar returns a var equivalent to the disjunction of the literals.
func (c *cnf) orVar(ls ...sat.Lit) int {
	v := c.s.NewVar()
	for _, l := range ls {
		c.s.AddClause(lit(v, false), l.Not())
	}
	cl := make([]sat.Lit, 0, len(ls)+1)
	for _, l := range ls {
		cl = append(cl, l)
	}
	cl = append(cl, lit(v, true))
	c.s.AddClause(cl...)
	return v
}

// fieldBits returns the bit variables for a field, or nil for a field
// outside the NoD packet model (the error is recorded on the cnf; callers
// degrade the constraint to "matches nothing").
func (c *cnf) fieldBits(f hdr.Field) []int {
	switch f {
	case hdr.DstIP:
		return c.dstIP
	case hdr.SrcIP:
		return c.srcIP
	case hdr.DstPort:
		return c.dstPort
	case hdr.SrcPort:
		return c.srcPort
	case hdr.Protocol:
		return c.proto
	}
	if c.err == nil {
		c.err = fmt.Errorf("nod: unsupported field %s", f.String())
	}
	return nil
}

// prefixVar returns a var equivalent to "field ∈ prefix".
func (c *cnf) prefixVar(f hdr.Field, p ip4.Prefix) int {
	p = p.Canonical()
	key := fmt.Sprintf("%d/%s", f, p)
	if v, ok := c.prefixMatch[key]; ok {
		return v
	}
	bits := c.fieldBits(f)
	if bits == nil {
		return c.constFalse()
	}
	if p.Len == 0 {
		v := c.constTrue()
		c.prefixMatch[key] = v
		return v
	}
	ls := make([]sat.Lit, 0, p.Len)
	for b := 0; b < int(p.Len); b++ {
		ls = append(ls, lit(bits[b], !p.Addr.Bit(b)))
	}
	v := c.andVar(ls...)
	c.prefixMatch[key] = v
	return v
}

// eqVar returns a var equivalent to "field == value" over all bits.
func (c *cnf) eqVar(f hdr.Field, val uint32) int {
	bits := c.fieldBits(f)
	if bits == nil {
		return c.constFalse()
	}
	w := len(bits)
	ls := make([]sat.Lit, w)
	for b := 0; b < w; b++ {
		ls[b] = lit(bits[b], val&(1<<(w-1-b)) == 0)
	}
	return c.andVar(ls...)
}

// geVar returns a var equivalent to "field >= k" via a big-endian
// comparison chain.
func (c *cnf) geVar(f hdr.Field, k uint32) int {
	key := fmt.Sprintf("ge/%d/%d", f, k)
	if v, ok := c.rangeVars[key]; ok {
		return v
	}
	bits := c.fieldBits(f)
	if bits == nil {
		return c.constFalse()
	}
	w := len(bits)
	// ge_i: the number formed by bits[i..] >= k's suffix. ge_w = true.
	ge := c.constTrue()
	for i := w - 1; i >= 0; i-- {
		ki := k&(1<<(w-1-i)) != 0
		if ki {
			ge = c.andVar(lit(bits[i], false), lit(ge, false))
		} else {
			ge = c.orVar(lit(bits[i], false), lit(ge, false))
		}
	}
	c.rangeVars[key] = ge
	return ge
}

// leVar returns a var equivalent to "field <= k".
func (c *cnf) leVar(f hdr.Field, k uint32) int {
	key := fmt.Sprintf("le/%d/%d", f, k)
	if v, ok := c.rangeVars[key]; ok {
		return v
	}
	bits := c.fieldBits(f)
	if bits == nil {
		return c.constFalse()
	}
	w := len(bits)
	le := c.constTrue()
	for i := w - 1; i >= 0; i-- {
		ki := k&(1<<(w-1-i)) != 0
		if ki {
			le = c.orVar(lit(bits[i], true), lit(le, false))
		} else {
			le = c.andVar(lit(bits[i], true), lit(le, false))
		}
	}
	c.rangeVars[key] = le
	return le
}

// lineMatchVar encodes one ACL line's match condition.
func (c *cnf) lineMatchVar(l *acl.Line) int {
	var conj []sat.Lit
	if l.Protocol >= 0 {
		conj = append(conj, lit(c.eqVar(hdr.Protocol, uint32(l.Protocol)), false))
	}
	orPrefixes := func(f hdr.Field, ps []ip4.Prefix) {
		if len(ps) == 0 {
			return
		}
		ls := make([]sat.Lit, len(ps))
		for i, p := range ps {
			ls[i] = lit(c.prefixVar(f, p), false)
		}
		conj = append(conj, lit(c.orVar(ls...), false))
	}
	orPrefixes(hdr.SrcIP, l.SrcIPs)
	orPrefixes(hdr.DstIP, l.DstIPs)
	orRanges := func(f hdr.Field, rs []acl.PortRange) {
		if len(rs) == 0 {
			return
		}
		// Ports only constrain TCP/UDP; other protocols don't match.
		tcpudp := c.orVar(
			lit(c.eqVar(hdr.Protocol, hdr.ProtoTCP), false),
			lit(c.eqVar(hdr.Protocol, hdr.ProtoUDP), false))
		conj = append(conj, lit(tcpudp, false))
		ls := make([]sat.Lit, len(rs))
		for i, r := range rs {
			ls[i] = lit(c.andVar(
				lit(c.geVar(f, uint32(r.Lo)), false),
				lit(c.leVar(f, uint32(r.Hi)), false)), false)
		}
		conj = append(conj, lit(c.orVar(ls...), false))
	}
	orRanges(hdr.SrcPort, l.SrcPorts)
	orRanges(hdr.DstPort, l.DstPorts)
	// ICMP and TCP-flag matches are outside the NoD baseline's packet
	// model; lines using them match nothing here (the baseline benchmarks
	// avoid them).
	if l.ICMPType >= 0 || l.ICMPCode >= 0 || l.TCPFlags != nil {
		return c.constFalse()
	}
	if len(conj) == 0 {
		return c.constTrue()
	}
	return c.andVar(conj...)
}

// aclPermitVar encodes first-match permit semantics of a named ACL.
func (c *cnf) aclPermitVar(d *config.Device, name string) int {
	if name == "" {
		return c.constTrue()
	}
	key := d.Hostname + "/" + name
	if v, ok := c.aclPermit[key]; ok {
		return v
	}
	a, ok := d.ACLs[name]
	var v int
	if !ok {
		v = c.constTrue() // undefined reference permits (engine parity)
	} else {
		// eff_i = match_i AND none earlier; permit = OR of permit-line effs.
		noneEarlier := c.constTrue()
		var permits []sat.Lit
		for i := range a.Lines {
			m := c.lineMatchVar(&a.Lines[i])
			eff := c.andVar(lit(m, false), lit(noneEarlier, false))
			if a.Lines[i].Action == acl.Permit {
				permits = append(permits, lit(eff, false))
			}
			noneEarlier = c.andVar(lit(noneEarlier, false), lit(m, true))
		}
		if len(permits) == 0 {
			v = c.constFalse()
		} else {
			v = c.orVar(permits...)
		}
	}
	c.aclPermit[key] = v
	return v
}

// location space: devices plus shared sinks. Terminal sinks absorb.
type locSpace struct {
	names []string // location names; devices first, then sinks
	index map[string]int
}

func (e *Encoder) locations() *locSpace {
	ls := &locSpace{index: make(map[string]int)}
	add := func(n string) {
		ls.index[n] = len(ls.names)
		ls.names = append(ls.names, n)
	}
	for _, n := range e.nodes {
		add(n)
	}
	for _, n := range e.nodes {
		add("acc:" + n)
	}
	add(SinkDelivered)
	add(SinkDenied)
	add(SinkNoRoute)
	add(SinkNull)
	return ls
}

func (ls *locSpace) isSink(i int) bool {
	return ls.names[i] == SinkDelivered || ls.names[i] == SinkDenied || ls.names[i] == SinkNoRoute || ls.names[i] == SinkNull || len(ls.names[i]) > 4 && ls.names[i][:4] == "acc:"
}

// chain is one unrolled location sequence sharing the packet variables.
type chain struct {
	loc [][]int // loc[k][location]
}

// buildChain unrolls the forwarding relation for maxHops steps with its own
// ECMP choice variables.
func (e *Encoder) buildChain(c *cnf, ls *locSpace, maxHops int) *chain {
	ch := &chain{}
	K := maxHops
	for k := 0; k <= K; k++ {
		row := make([]int, len(ls.names))
		for i := range row {
			row[i] = c.s.NewVar()
		}
		ch.loc = append(ch.loc, row)
		// Exactly one location per step.
		all := make([]sat.Lit, len(row))
		for i, v := range row {
			all[i] = lit(v, false)
		}
		c.s.AddClause(all...)
		for i := 0; i < len(row); i++ {
			for j := i + 1; j < len(row); j++ {
				c.s.AddClause(lit(row[i], true), lit(row[j], true))
			}
		}
	}
	// Sink absorption.
	for k := 0; k < K; k++ {
		for i := range ls.names {
			if ls.isSink(i) {
				c.s.AddClause(lit(ch.loc[k][i], true), lit(ch.loc[k+1][i], false))
			}
		}
	}
	// Per-device forwarding.
	for _, name := range e.nodes {
		e.encodeDevice(c, ls, ch, name, K)
	}
	return ch
}

// encodeDevice adds transition clauses for one device across all steps.
func (e *Encoder) encodeDevice(c *cnf, ls *locSpace, ch *chain, name string, K int) {
	d := e.dp.Network.Devices[name]
	vs := e.dp.Nodes[name].DefaultVRF()
	u := ls.index[name]
	accU := ls.index["acc:"+name]

	// Own-IP acceptance.
	var ownLits []sat.Lit
	for _, in := range d.InterfaceNames() {
		i := d.Interfaces[in]
		if !i.Active {
			continue
		}
		for _, p := range i.Addresses {
			ownLits = append(ownLits, lit(c.prefixVar(hdr.DstIP, ip4.HostPrefix(p.Addr)), false))
		}
	}
	own := c.constFalse()
	if len(ownLits) > 0 {
		own = c.orVar(ownLits...)
	}
	for k := 0; k < K; k++ {
		c.s.AddClause(lit(ch.loc[k][u], true), lit(own, true), lit(ch.loc[k+1][accU], false))
	}
	if vs == nil || vs.FIB == nil {
		for k := 0; k < K; k++ {
			c.s.AddClause(lit(ch.loc[k][u], true), lit(own, false), lit(ch.loc[k+1][ls.index[SinkNoRoute]], false))
		}
		return
	}

	// FIB entries, longest prefix first for the "no longer match" chain.
	entries := vs.FIB.Entries()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Prefix.Len > entries[j].Prefix.Len })
	// selected_e = match_e AND no longer entry matches.
	selected := make([]int, len(entries))
	var matchedLonger []sat.Lit // match vars of strictly longer prefixes
	lastLen := -1
	var longerAtLen []sat.Lit
	for i := range entries {
		if int(entries[i].Prefix.Len) != lastLen {
			matchedLonger = append(matchedLonger, longerAtLen...)
			longerAtLen = nil
			lastLen = int(entries[i].Prefix.Len)
		}
		m := c.prefixVar(hdr.DstIP, entries[i].Prefix)
		conj := []sat.Lit{lit(m, false)}
		for _, ml := range matchedLonger {
			conj = append(conj, ml.Not())
		}
		selected[i] = c.andVar(conj...)
		longerAtLen = append(longerAtLen, lit(m, false))
	}
	// No-route: at u, not own, nothing selected.
	for k := 0; k < K; k++ {
		cl := []sat.Lit{lit(ch.loc[k][u], true), lit(own, false)}
		for _, s := range selected {
			cl = append(cl, lit(s, false))
		}
		cl = append(cl, lit(ch.loc[k+1][ls.index[SinkNoRoute]], false))
		c.s.AddClause(cl...)
	}

	// Per-entry transitions.
	for i := range entries {
		e.encodeEntry(c, ls, ch, d, u, selected[i], own, &entries[i], K)
	}
}

// encodeEntry adds the transition clauses for one selected FIB entry,
// with chain-local ECMP choice variables (paths for a fixed packet are
// simple, so one choice per entry suffices).
func (e *Encoder) encodeEntry(c *cnf, ls *locSpace, ch *chain, d *config.Device,
	u, sel, own int, entry *fib.Entry, K int) {

	var choice []int
	if len(entry.NextHops) > 1 {
		choice = make([]int, len(entry.NextHops))
		for i := range choice {
			choice[i] = c.s.NewVar()
		}
		cl := make([]sat.Lit, len(choice))
		for i, v := range choice {
			cl[i] = lit(v, false)
		}
		c.s.AddClause(cl...)
	}
	e.emitEntryClauses(c, ls, ch, d, u, sel, own, entry, choice, K)
}

func outACLOf(d *config.Device, iface string) string {
	if i, ok := d.Interfaces[iface]; ok {
		return i.OutACL
	}
	return ""
}

// emitEntryClauses writes the transition clauses for one entry.
func (e *Encoder) emitEntryClauses(c *cnf, ls *locSpace, ch *chain, d *config.Device,
	u, sel, own int, entry *fib.Entry, choice []int, K int) {

	name := d.Hostname
	for ni, nh := range entry.NextHops {
		var guard []sat.Lit // extra guard literals (negated in clauses)
		if choice != nil {
			guard = append(guard, lit(choice[ni], true))
		}
		emit := func(k int, cond []sat.Lit, target int) {
			cl := []sat.Lit{lit(ch.loc[k][u], true), lit(own, false), lit(sel, true)}
			cl = append(cl, guard...)
			cl = append(cl, cond...)
			cl = append(cl, lit(ch.loc[k+1][target], false))
			c.s.AddClause(cl...)
		}
		if nh.Drop {
			for k := 0; k < K; k++ {
				emit(k, nil, ls.index[SinkNull])
			}
			continue
		}
		outPermit := c.aclPermitVar(d, outACLOf(d, nh.Iface))
		// Egress denied.
		for k := 0; k < K; k++ {
			emit(k, []sat.Lit{lit(outPermit, false)}, ls.index[SinkDenied])
		}
		if nh.Node != "" {
			// Known neighbor: ingress ACL at the far end.
			inName, inIface := e.ingressOf(name, nh.Iface, nh.Node)
			nd := e.dp.Network.Devices[nh.Node]
			inPermit := c.constTrue()
			if inIface != "" && nd != nil {
				if ii, ok := nd.Interfaces[inIface]; ok {
					inPermit = c.aclPermitVar(nd, ii.InACL)
				}
			}
			_ = inName
			v := ls.index[nh.Node]
			for k := 0; k < K; k++ {
				// outPermit ∧ inPermit → arrive at v; outPermit ∧ ¬inPermit
				// → denied at the far end's ingress filter.
				emit(k, []sat.Lit{lit(outPermit, true), lit(inPermit, true)}, v)
				emit(k, []sat.Lit{lit(outPermit, true), lit(inPermit, false)}, ls.index[SinkDenied])
			}
			continue
		}
		// Connected delivery: split by neighbor-owned IPs on the link.
		type nbOwn struct {
			node string
			in   string
			eq   int
		}
		var nbs []nbOwn
		linkLits := []sat.Lit{}
		for _, ed := range e.dp.Topology.EdgesFrom(name, nh.Iface) {
			ri := e.dp.Network.Devices[ed.Node2].Interfaces[ed.Iface2]
			if ri == nil {
				continue
			}
			var eqs []sat.Lit
			for _, p := range ri.Addresses {
				eqs = append(eqs, lit(c.prefixVar(hdr.DstIP, ip4.HostPrefix(p.Addr)), false))
			}
			if len(eqs) == 0 {
				continue
			}
			eq := c.orVar(eqs...)
			nbs = append(nbs, nbOwn{node: ed.Node2, in: ed.Iface2, eq: eq})
			linkLits = append(linkLits, lit(eq, false))
		}
		anyNb := c.constFalse()
		if len(linkLits) > 0 {
			anyNb = c.orVar(linkLits...)
		}
		for _, nb := range nbs {
			nd := e.dp.Network.Devices[nb.node]
			inPermit := c.constTrue()
			if ii, ok := nd.Interfaces[nb.in]; ok {
				inPermit = c.aclPermitVar(nd, ii.InACL)
			}
			v := ls.index[nb.node]
			for k := 0; k < K; k++ {
				emit(k, []sat.Lit{lit(outPermit, true), lit(nb.eq, true), lit(inPermit, true)}, v)
				emit(k, []sat.Lit{lit(outPermit, true), lit(nb.eq, true), lit(inPermit, false)}, ls.index[SinkDenied])
			}
		}
		// Everything else on the entry: delivered (host or exits network).
		for k := 0; k < K; k++ {
			emit(k, []sat.Lit{lit(outPermit, true), lit(anyNb, false)}, ls.index[SinkDelivered])
		}
	}
}

func (e *Encoder) ingressOf(fromNode, fromIface, toNode string) (string, string) {
	for _, ed := range e.dp.Topology.EdgesFrom(fromNode, fromIface) {
		if ed.Node2 == toNode {
			return ed.Node2, ed.Iface2
		}
	}
	return "", ""
}

// extractPacket decodes the packet from a model.
func (c *cnf) extractPacket(m []bool) hdr.Packet {
	read := func(bits []int) uint32 {
		var v uint32
		for i, b := range bits {
			if m[b] {
				v |= 1 << (len(bits) - 1 - i)
			}
		}
		return v
	}
	return hdr.Packet{
		DstIP:    ip4.Addr(read(c.dstIP)),
		SrcIP:    ip4.Addr(read(c.srcIP)),
		DstPort:  uint16(read(c.dstPort)),
		SrcPort:  uint16(read(c.srcPort)),
		Protocol: uint8(read(c.proto)),
	}
}

// Reachable asks: does some packet injected at startNode reach acc:dst
// within maxHops? Returns a witness packet when satisfiable. Unknown
// device names and encoding failures are reported as errors instead of
// panicking or silently querying the wrong location.
func (e *Encoder) Reachable(startNode, dstDevice string, maxHops int) (bool, hdr.Packet, error) {
	c := newCNF(e.dp)
	ls := e.locations()
	start, ok := ls.index[startNode]
	if !ok {
		return false, hdr.Packet{}, fmt.Errorf("nod: unknown start device %q", startNode)
	}
	dst, ok := ls.index["acc:"+dstDevice]
	if !ok {
		return false, hdr.Packet{}, fmt.Errorf("nod: unknown destination device %q", dstDevice)
	}
	ch := e.buildChain(c, ls, maxHops)
	if c.err != nil {
		return false, hdr.Packet{}, c.err
	}
	c.s.AddClause(lit(ch.loc[0][start], false))
	c.s.AddClause(lit(ch.loc[maxHops][dst], false))
	if !c.s.Solve() {
		return false, hdr.Packet{}, nil
	}
	return true, c.extractPacket(c.s.Model()), nil
}

// Violation is a multipath-consistency counterexample.
type Violation struct {
	Start  string
	Packet hdr.Packet
}

// MultipathConsistency searches, per start device, for a packet that one
// ECMP path delivers and another drops — the Figure 3 verification query.
// An encoding failure aborts with the error and the violations found so
// far.
func (e *Encoder) MultipathConsistency(maxHops int) ([]Violation, error) {
	var out []Violation
	for _, start := range e.nodes {
		c := newCNF(e.dp)
		ls := e.locations()
		a := e.buildChain(c, ls, maxHops)
		b := e.buildChain(c, ls, maxHops)
		c.s.AddClause(lit(a.loc[0][ls.index[start]], false))
		c.s.AddClause(lit(b.loc[0][ls.index[start]], false))
		// Chain A ends in success, chain B in failure.
		var succ []sat.Lit
		for i, n := range ls.names {
			if n == SinkDelivered || len(n) > 4 && n[:4] == "acc:" {
				succ = append(succ, lit(a.loc[maxHops][i], false))
			}
		}
		c.s.AddClause(succ...)
		var fail []sat.Lit
		for _, n := range []string{SinkDenied, SinkNoRoute, SinkNull} {
			fail = append(fail, lit(b.loc[maxHops][ls.index[n]], false))
		}
		c.s.AddClause(fail...)
		if c.err != nil {
			return out, c.err
		}
		if c.s.Solve() {
			out = append(out, Violation{Start: start, Packet: c.extractPacket(c.s.Model())})
		}
	}
	return out, nil
}
