// Package hdr defines the packet-header variable layout and the encoding of
// packet sets and packet transformations as BDDs.
//
// The layout follows the paper (§4.2.2) exactly:
//
//   - fields are ordered by how frequently real configurations constrain
//     them — Destination IP, Source IP, Destination Port, Source Port, ICMP
//     Code, ICMP Type, IP Protocol, then the less-used TCP Flags, Packet
//     Length, DSCP, ECN, and Fragment Offset;
//   - within a field, the most significant bit comes first;
//   - the four transformed fields (the IPs and ports, 96 bits) carry a
//     second, primed copy of each variable, interleaved with the unprimed
//     one, so that transformation relations stay small and renaming primed
//     to unprimed is order-preserving;
//   - this yields 261 network-independent base variables; a handful of
//     extension variables (firewall zones, waypoints — "0–6 in the
//     real-world networks evaluated", §4.2.2) are allocated after them.
//
// Panic policy: like package bdd, this package panics only on violated
// library invariants — a layout that does not produce the expected
// variable count, an extension variable beyond the allocated range, an
// unknown Field, or transforming a non-transformable field. None are
// reachable from user configuration input; the failure-containment layer
// in internal/core recovers them at stage boundaries as a backstop.
package hdr

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/ip4"
)

// Field identifies a packet-header field.
type Field int

// Header fields in the paper's variable order.
const (
	DstIP Field = iota
	SrcIP
	DstPort
	SrcPort
	IcmpCode
	IcmpType
	Protocol
	TCPFlags
	Length
	DSCP
	ECN
	FragOffset
	numFields
)

var fieldNames = [numFields]string{
	"dstIp", "srcIp", "dstPort", "srcPort", "icmpCode", "icmpType",
	"ipProtocol", "tcpFlags", "packetLength", "dscp", "ecn", "fragmentOffset",
}

func (f Field) String() string { return fieldNames[f] }

// Width returns the field's width in bits.
func (f Field) Width() int { return fieldWidths[f] }

var fieldWidths = [numFields]int{32, 32, 16, 16, 8, 8, 8, 8, 16, 6, 2, 13}

// transformed reports whether the field carries primed (output) variables.
func (f Field) transformed() bool {
	return f == DstIP || f == SrcIP || f == DstPort || f == SrcPort
}

// Well-known IP protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// TCP flag bit positions within the TCPFlags field (MSB-first field
// encoding: bit 0 is the MSB). We store flags as CWR,ECE,URG,ACK,PSH,RST,
// SYN,FIN matching the wire order of the TCP header's flag byte.
const (
	FlagCWR = 1 << 7
	FlagECE = 1 << 6
	FlagURG = 1 << 5
	FlagACK = 1 << 4
	FlagPSH = 1 << 3
	FlagRST = 1 << 2
	FlagSYN = 1 << 1
	FlagFIN = 1 << 0
)

// BaseVars is the number of network-independent variables (paper §4.2.2).
const BaseVars = 261

// Layout assigns BDD variable indices to header bits.
type Layout struct {
	varOf      [numFields][]int // varOf[f][bit], bit 0 = MSB
	primeOf    [numFields][]int // primed copies, transformed fields only
	extBase    int
	extBits    int
	totalVars  int
	transVS    []int // unprimed vars of transformed fields (for RelProd)
	unprimeMap map[int]int
	primeMap   map[int]int
}

// NewLayout builds the paper's layout plus extBits extension variables.
func NewLayout(extBits int) *Layout {
	l := &Layout{extBits: extBits}
	l.unprimeMap = make(map[int]int)
	l.primeMap = make(map[int]int)
	next := 0
	for f := Field(0); f < numFields; f++ {
		w := fieldWidths[f]
		l.varOf[f] = make([]int, w)
		if f.transformed() {
			l.primeOf[f] = make([]int, w)
			for b := 0; b < w; b++ {
				l.varOf[f][b] = next
				l.primeOf[f][b] = next + 1
				l.unprimeMap[next+1] = next
				l.primeMap[next] = next + 1
				l.transVS = append(l.transVS, next)
				next += 2
			}
		} else {
			for b := 0; b < w; b++ {
				l.varOf[f][b] = next
				next++
			}
		}
	}
	if next != BaseVars {
		panic(fmt.Sprintf("hdr: layout produced %d base vars, want %d", next, BaseVars))
	}
	l.extBase = next
	l.totalVars = next + extBits
	return l
}

// NumVars returns the total variable count (base + extension).
func (l *Layout) NumVars() int { return l.totalVars }

// Var returns the unprimed variable for bit b (0 = MSB) of field f.
func (l *Layout) Var(f Field, b int) int { return l.varOf[f][b] }

// PrimeVar returns the primed (transformation output) variable for bit b of
// transformed field f.
func (l *Layout) PrimeVar(f Field, b int) int { return l.primeOf[f][b] }

// ExtVar returns extension variable i.
func (l *Layout) ExtVar(i int) int {
	if i < 0 || i >= l.extBits {
		panic(fmt.Sprintf("hdr: extension var %d out of %d", i, l.extBits))
	}
	return l.extBase + i
}

// ExtBits returns the number of extension variables.
func (l *Layout) ExtBits() int { return l.extBits }

// Packet is a concrete IPv4 packet header, shared by the traceroute engine,
// concrete ACL evaluation, and example rendering.
type Packet struct {
	DstIP      ip4.Addr
	SrcIP      ip4.Addr
	DstPort    uint16
	SrcPort    uint16
	IcmpCode   uint8
	IcmpType   uint8
	Protocol   uint8
	TCPFlags   uint8
	Length     uint16
	DSCP       uint8
	ECN        uint8
	FragOffset uint16
}

// Get returns the value of field f.
func (p Packet) Get(f Field) uint32 {
	switch f {
	case DstIP:
		return uint32(p.DstIP)
	case SrcIP:
		return uint32(p.SrcIP)
	case DstPort:
		return uint32(p.DstPort)
	case SrcPort:
		return uint32(p.SrcPort)
	case IcmpCode:
		return uint32(p.IcmpCode)
	case IcmpType:
		return uint32(p.IcmpType)
	case Protocol:
		return uint32(p.Protocol)
	case TCPFlags:
		return uint32(p.TCPFlags)
	case Length:
		return uint32(p.Length)
	case DSCP:
		return uint32(p.DSCP)
	case ECN:
		return uint32(p.ECN)
	case FragOffset:
		return uint32(p.FragOffset)
	}
	panic("hdr: bad field")
}

// Set assigns the value of field f.
func (p *Packet) Set(f Field, v uint32) {
	switch f {
	case DstIP:
		p.DstIP = ip4.Addr(v)
	case SrcIP:
		p.SrcIP = ip4.Addr(v)
	case DstPort:
		p.DstPort = uint16(v)
	case SrcPort:
		p.SrcPort = uint16(v)
	case IcmpCode:
		p.IcmpCode = uint8(v)
	case IcmpType:
		p.IcmpType = uint8(v)
	case Protocol:
		p.Protocol = uint8(v)
	case TCPFlags:
		p.TCPFlags = uint8(v)
	case Length:
		p.Length = uint16(v)
	case DSCP:
		p.DSCP = uint8(v)
	case ECN:
		p.ECN = uint8(v)
	case FragOffset:
		p.FragOffset = uint16(v)
	}
}

func (p Packet) String() string {
	s := fmt.Sprintf("%s:%d -> %s:%d proto=%d", p.SrcIP, p.SrcPort, p.DstIP, p.DstPort, p.Protocol)
	if p.Protocol == ProtoICMP {
		s += fmt.Sprintf(" icmp=%d/%d", p.IcmpType, p.IcmpCode)
	}
	if p.Protocol == ProtoTCP && p.TCPFlags != 0 {
		s += fmt.Sprintf(" flags=0x%02x", p.TCPFlags)
	}
	return s
}

// Enc couples a BDD factory with a Layout and provides the packet-set and
// transformation encodings used by the verification engine.
type Enc struct {
	F *bdd.Factory
	L *Layout

	identity   [numFields]bdd.Ref // identity relations, transformed fields
	allIdent   bdd.Ref
	transVS    bdd.VarSet
	unprime    bdd.Perm
	prime      bdd.Perm
	extVS      bdd.VarSet
	fieldCache map[fieldVal]bdd.Ref
}

type fieldVal struct {
	f Field
	v uint32
}

// NewEnc creates an encoder with extBits extension variables.
func NewEnc(extBits int) *Enc {
	l := NewLayout(extBits)
	e := &Enc{L: l, F: bdd.NewFactory(l.NumVars())}
	e.fieldCache = make(map[fieldVal]bdd.Ref)
	e.transVS = e.F.NewVarSet(l.transVS...)
	e.unprime = e.F.NewPerm(l.unprimeMap)
	e.prime = e.F.NewPerm(l.primeMap)
	e.allIdent = bdd.True
	for f := Field(0); f < numFields; f++ {
		if !f.transformed() {
			continue
		}
		id := bdd.True
		for b := 0; b < fieldWidths[f]; b++ {
			x := e.F.Var(l.Var(f, b))
			y := e.F.Var(l.PrimeVar(f, b))
			id = e.F.And(id, e.F.Not(e.F.Xor(x, y)))
		}
		e.identity[f] = id
		e.allIdent = e.F.And(e.allIdent, id)
	}
	if extBits > 0 {
		ext := make([]int, extBits)
		for i := range ext {
			ext[i] = l.ExtVar(i)
		}
		e.extVS = e.F.NewVarSet(ext...)
	}
	return e
}

// CloneEmpty returns a fresh encoder with the same layout (identical
// variable numbering) but its own, empty BDD factory. BDDs migrate
// soundly between an encoder and its clones via bdd.Migrator because the
// variable meaning at every level is the same.
func (e *Enc) CloneEmpty() *Enc { return NewEnc(e.L.extBits) }

// AdoptTransform wraps a relation BDD that already lives in e's factory
// (typically the result of migrating another encoder's Transform.Rel())
// as a Transform bound to e.
func (e *Enc) AdoptTransform(rel bdd.Ref) *Transform { return &Transform{e: e, rel: rel} }

// FieldEq returns the set of packets whose field f equals v.
func (e *Enc) FieldEq(f Field, v uint32) bdd.Ref {
	key := fieldVal{f, v}
	if r, ok := e.fieldCache[key]; ok {
		return r
	}
	r := bdd.True
	w := fieldWidths[f]
	for b := w - 1; b >= 0; b-- { // build LSB-up so high bits are root-most
		if v&(1<<(w-1-b)) != 0 {
			r = e.F.And(e.F.Var(e.L.Var(f, b)), r)
		} else {
			r = e.F.And(e.F.NVar(e.L.Var(f, b)), r)
		}
	}
	e.fieldCache[key] = r
	return r
}

// FieldGE returns packets with field f >= v.
func (e *Enc) FieldGE(f Field, v uint32) bdd.Ref {
	r := bdd.True
	w := fieldWidths[f]
	for b := w - 1; b >= 0; b-- {
		x := e.F.Var(e.L.Var(f, b))
		if v&(1<<(w-1-b)) != 0 {
			r = e.F.And(x, r)
		} else {
			r = e.F.Or(x, r)
		}
	}
	return r
}

// FieldLE returns packets with field f <= v.
func (e *Enc) FieldLE(f Field, v uint32) bdd.Ref {
	r := bdd.True
	w := fieldWidths[f]
	for b := w - 1; b >= 0; b-- {
		nx := e.F.NVar(e.L.Var(f, b))
		if v&(1<<(w-1-b)) != 0 {
			r = e.F.Or(nx, r)
		} else {
			r = e.F.And(nx, r)
		}
	}
	return r
}

// FieldRange returns packets with lo <= field f <= hi.
func (e *Enc) FieldRange(f Field, lo, hi uint32) bdd.Ref {
	if lo > hi {
		return bdd.False
	}
	return e.F.And(e.FieldGE(f, lo), e.FieldLE(f, hi))
}

// Prefix returns packets whose IP field f falls in prefix p.
func (e *Enc) Prefix(f Field, p ip4.Prefix) bdd.Ref {
	r := bdd.True
	a := uint32(p.Canonical().Addr)
	for b := int(p.Len) - 1; b >= 0; b-- {
		if a&(1<<(31-b)) != 0 {
			r = e.F.And(e.F.Var(e.L.Var(f, b)), r)
		} else {
			r = e.F.And(e.F.NVar(e.L.Var(f, b)), r)
		}
	}
	return r
}

// TCPFlagSet returns TCP packets with the given flag bit(s) all set.
func (e *Enc) TCPFlagSet(mask uint8) bdd.Ref {
	r := e.FieldEq(Protocol, ProtoTCP)
	for b := 0; b < 8; b++ {
		if mask&(1<<(7-b)) != 0 {
			r = e.F.And(r, e.F.Var(e.L.Var(TCPFlags, b)))
		}
	}
	return r
}

// PacketBDD returns the singleton set containing exactly p (over all base
// unprimed variables).
func (e *Enc) PacketBDD(p Packet) bdd.Ref {
	r := bdd.True
	for f := numFields - 1; f >= 0; f-- {
		r = e.F.And(e.FieldEq(Field(f), p.Get(Field(f))), r)
	}
	return r
}

// PacketFromAssignment extracts a concrete packet from a satisfying
// assignment, treating don't-care bits as zero.
func (e *Enc) PacketFromAssignment(a bdd.Assignment) Packet {
	var p Packet
	for f := Field(0); f < numFields; f++ {
		var v uint32
		w := fieldWidths[f]
		for b := 0; b < w; b++ {
			if val, ok := a[e.L.Var(f, b)]; ok && val {
				v |= 1 << (w - 1 - b)
			}
		}
		p.Set(f, v)
	}
	return p
}

// PickPacket selects a concrete packet from the set r, preferring the given
// constraints in order (paper §4.4.3). Returns false if r is empty.
func (e *Enc) PickPacket(r bdd.Ref, prefs ...bdd.Ref) (Packet, bool) {
	if r == bdd.False {
		return Packet{}, false
	}
	a := e.F.PickPreferring(r, prefs...)
	return e.PacketFromAssignment(a), true
}

// Transform is a packet transformation relation over the primed variables.
// A fresh Transform is the identity on every transformed field.
type Transform struct {
	e   *Enc
	rel bdd.Ref
}

// NewTransform returns the identity transformation.
func (e *Enc) NewTransform() *Transform {
	return &Transform{e: e, rel: e.allIdent}
}

// Rel returns the underlying relation BDD.
func (t *Transform) Rel() bdd.Ref { return t.rel }

// replaceField swaps field f's identity constraint for out.
func (t *Transform) replaceField(f Field, out bdd.Ref) *Transform {
	if !f.transformed() {
		panic(fmt.Sprintf("hdr: field %v is not transformable", f))
	}
	// Remove f's primed constraint by quantifying its primed vars, then
	// conjoin the new output constraint.
	w := fieldWidths[f]
	vars := make([]int, w)
	for b := 0; b < w; b++ {
		vars[b] = t.e.L.PrimeVar(f, b)
	}
	rel := t.e.F.Exists(t.rel, t.e.F.NewVarSet(vars...))
	t.rel = t.e.F.And(rel, out)
	return t
}

// SetField makes the transformation write constant v to field f.
func (t *Transform) SetField(f Field, v uint32) *Transform {
	out := bdd.True
	w := fieldWidths[f]
	for b := w - 1; b >= 0; b-- {
		pv := t.e.L.PrimeVar(f, b)
		if v&(1<<(w-1-b)) != 0 {
			out = t.e.F.And(t.e.F.Var(pv), out)
		} else {
			out = t.e.F.And(t.e.F.NVar(pv), out)
		}
	}
	return t.replaceField(f, out)
}

// SetFieldPool makes the transformation write any value in [lo, hi] to
// field f (a NAT pool: the output is nondeterministic within the pool).
func (t *Transform) SetFieldPool(f Field, lo, hi uint32) *Transform {
	out := bdd.False
	w := fieldWidths[f]
	ge := bdd.True
	le := bdd.True
	for b := w - 1; b >= 0; b-- {
		x := t.e.F.Var(t.e.L.PrimeVar(f, b))
		nx := t.e.F.NVar(t.e.L.PrimeVar(f, b))
		if lo&(1<<(w-1-b)) != 0 {
			ge = t.e.F.And(x, ge)
		} else {
			ge = t.e.F.Or(x, ge)
		}
		if hi&(1<<(w-1-b)) != 0 {
			le = t.e.F.Or(nx, le)
		} else {
			le = t.e.F.And(nx, le)
		}
	}
	out = t.e.F.And(ge, le)
	return t.replaceField(f, out)
}

// Guarded combines transformations rule-list style: packets matching guard
// take t's transformation; the rest take els's. Guard is over unprimed
// variables.
func (e *Enc) Guarded(guard bdd.Ref, then, els *Transform) *Transform {
	return &Transform{e: e, rel: e.F.ITE(guard, then.rel, els.rel)}
}

// Apply pushes the packet set in through the transformation, using the
// fused RelProd (paper §4.2.3).
func (e *Enc) Apply(in bdd.Ref, t *Transform) bdd.Ref {
	return e.F.RelProd(in, t.rel, e.transVS, e.unprime)
}

// ApplyNaive is the unfused 3-step version, for the ablation benchmark.
func (e *Enc) ApplyNaive(in bdd.Ref, t *Transform) bdd.Ref {
	return e.F.RelProdNaive(in, t.rel, e.transVS, e.unprime)
}

// ReverseApply computes the set of input packets that the transformation
// can map into out — the reverse-BDD step used for backward propagation and
// bidirectional reachability (paper §4.2.3).
func (e *Enc) ReverseApply(out bdd.Ref, t *Transform) bdd.Ref {
	primed := e.F.Replace(out, e.prime)
	// ∃ primed (primed(out) ∧ rel) leaves the unprimed inputs.
	primeVars := make([]int, 0, len(e.L.transVS))
	for _, v := range e.L.transVS {
		primeVars = append(primeVars, v+1)
	}
	return e.F.AndExists(primed, t.rel, e.F.NewVarSet(primeVars...))
}

// SwapSrcDst returns the set with source and destination IPs and ports
// exchanged — the return-flow header set used by bidirectional
// reachability (paper §4.2.3). It applies bitwise variable swaps (a swap
// *relation* between the distant src and dst variable blocks would be
// exponentially large under the fixed order).
func (e *Enc) SwapSrcDst(set bdd.Ref) bdd.Ref {
	for b := 0; b < fieldWidths[DstIP]; b++ {
		set = e.F.SwapVars(set, e.L.Var(DstIP, b), e.L.Var(SrcIP, b))
	}
	for b := 0; b < fieldWidths[DstPort]; b++ {
		set = e.F.SwapVars(set, e.L.Var(DstPort, b), e.L.Var(SrcPort, b))
	}
	return set
}

// SetBit returns the set with extension variable v forced to 1, erasing its
// previous value. Used for waypoint marking (paper §4.2.3).
func (e *Enc) SetBit(set bdd.Ref, v int) bdd.Ref {
	return e.F.And(e.F.Exists(set, e.F.NewVarSet(v)), e.F.Var(v))
}

// ClearExt erases all extension variables from the set (used when a packet
// leaves a firewall's zone scope).
func (e *Enc) ClearExt(set bdd.Ref) bdd.Ref {
	if e.L.extBits == 0 {
		return set
	}
	return e.F.Exists(set, e.extVS)
}

// ExtEq returns the constraint that extension bits [base, base+width)
// encode value v (MSB first).
func (e *Enc) ExtEq(base, width int, v uint32) bdd.Ref {
	r := bdd.True
	for b := width - 1; b >= 0; b-- {
		x := e.L.ExtVar(base + b)
		if v&(1<<(width-1-b)) != 0 {
			r = e.F.And(e.F.Var(x), r)
		} else {
			r = e.F.And(e.F.NVar(x), r)
		}
	}
	return r
}

// ExtVarSet returns the VarSet for extension bits [base, base+width).
func (e *Enc) ExtVarSet(base, width int) bdd.VarSet {
	vars := make([]int, width)
	for i := range vars {
		vars[i] = e.L.ExtVar(base + i)
	}
	return e.F.NewVarSet(vars...)
}
