package hdr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
	"repro/internal/ip4"
)

func TestLayoutBaseVars(t *testing.T) {
	l := NewLayout(0)
	if l.NumVars() != BaseVars {
		t.Fatalf("layout has %d vars, want %d", l.NumVars(), BaseVars)
	}
	l6 := NewLayout(6)
	if l6.NumVars() != BaseVars+6 {
		t.Fatalf("layout+6 has %d vars", l6.NumVars())
	}
}

func TestLayoutOrder(t *testing.T) {
	l := NewLayout(0)
	// Paper order: dstIP first, MSB-first within fields.
	if l.Var(DstIP, 0) != 0 {
		t.Error("dstIP MSB must be variable 0")
	}
	if l.PrimeVar(DstIP, 0) != 1 {
		t.Error("dstIP MSB prime must be variable 1 (interleaved)")
	}
	if l.Var(DstIP, 1) != 2 {
		t.Error("dstIP bit 1 must follow its prime pair")
	}
	// dstIP consumes 64 vars, srcIP next.
	if l.Var(SrcIP, 0) != 64 {
		t.Errorf("srcIP base = %d, want 64", l.Var(SrcIP, 0))
	}
	// Fields must be strictly ordered: every var of field f precedes
	// every var of field f+1.
	prev := -1
	for f := Field(0); f < numFields; f++ {
		for b := 0; b < f.Width(); b++ {
			v := l.Var(f, b)
			if v <= prev && !f.transformed() {
				t.Fatalf("field %v bit %d out of order", f, b)
			}
			prev = v
			if f.transformed() {
				prev = l.PrimeVar(f, b)
			}
		}
	}
}

func TestFieldEq(t *testing.T) {
	e := NewEnc(0)
	r := e.FieldEq(Protocol, ProtoTCP)
	// SatCount over all 261 vars: fixing 8 bits leaves 2^253 models.
	want := pow2(261 - 8)
	if got := e.F.SatCount(r); got != want {
		t.Errorf("SatCount = %g, want %g", got, want)
	}
	// Identical calls hit the cache and return identical refs.
	if e.FieldEq(Protocol, ProtoTCP) != r {
		t.Error("FieldEq not cached/canonical")
	}
}

func pow2(n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= 2
	}
	return v
}

func TestFieldRangeSemantics(t *testing.T) {
	e := NewEnc(0)
	check := func(lo16, hi16 uint16, probe uint16) bool {
		lo, hi := uint32(lo16), uint32(hi16)
		if lo > hi {
			lo, hi = hi, lo
		}
		r := e.FieldRange(DstPort, lo, hi)
		in := e.F.And(r, e.FieldEq(DstPort, uint32(probe))) != bdd.False
		return in == (uint32(probe) >= lo && uint32(probe) <= hi)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFieldRangeEmpty(t *testing.T) {
	e := NewEnc(0)
	if e.FieldRange(DstPort, 10, 5) != bdd.False {
		t.Error("inverted range should be empty")
	}
	full := e.FieldRange(DstPort, 0, 65535)
	if full != bdd.True {
		t.Error("full range should be True")
	}
}

func TestPrefixMatch(t *testing.T) {
	e := NewEnc(0)
	p := ip4.MustParsePrefix("10.128.0.0/9")
	r := e.Prefix(DstIP, p)
	inside := e.PacketBDD(Packet{DstIP: ip4.MustParseAddr("10.200.1.1"), Protocol: ProtoTCP})
	outside := e.PacketBDD(Packet{DstIP: ip4.MustParseAddr("10.1.1.1"), Protocol: ProtoTCP})
	if e.F.And(r, inside) == bdd.False {
		t.Error("address inside prefix excluded")
	}
	if e.F.And(r, outside) != bdd.False {
		t.Error("address outside prefix included")
	}
	if e.Prefix(DstIP, ip4.MustParsePrefix("0.0.0.0/0")) != bdd.True {
		t.Error("default route prefix must be True")
	}
}

func TestPrefixSatCount(t *testing.T) {
	e := NewEnc(0)
	check := func(a uint32, l8 uint8) bool {
		plen := int(l8 % 33)
		p := ip4.Prefix{Addr: ip4.Addr(a), Len: uint8(plen)}
		r := e.Prefix(DstIP, p)
		return e.F.SatCount(r) == pow2(261-plen)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPacketBDDRoundTrip(t *testing.T) {
	e := NewEnc(0)
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		p := Packet{
			DstIP:    ip4.Addr(rnd.Uint32()),
			SrcIP:    ip4.Addr(rnd.Uint32()),
			DstPort:  uint16(rnd.Intn(65536)),
			SrcPort:  uint16(rnd.Intn(65536)),
			Protocol: uint8(rnd.Intn(256)),
			IcmpCode: uint8(rnd.Intn(256)),
			IcmpType: uint8(rnd.Intn(256)),
			TCPFlags: uint8(rnd.Intn(256)),
			Length:   uint16(rnd.Intn(65536)),
			DSCP:     uint8(rnd.Intn(64)),
			ECN:      uint8(rnd.Intn(4)),
		}
		set := e.PacketBDD(p)
		got, ok := e.PickPacket(set)
		if !ok {
			t.Fatal("singleton set empty")
		}
		if got != p {
			t.Fatalf("round trip: got %+v want %+v", got, p)
		}
	}
}

func TestTransformSetField(t *testing.T) {
	e := NewEnc(0)
	natIP := ip4.MustParseAddr("100.64.0.1")
	tr := e.NewTransform().SetField(SrcIP, uint32(natIP))
	in := e.PacketBDD(Packet{
		SrcIP: ip4.MustParseAddr("192.168.1.5"), DstIP: ip4.MustParseAddr("8.8.8.8"),
		Protocol: ProtoUDP, SrcPort: 5353, DstPort: 53,
	})
	out := e.Apply(in, tr)
	p, ok := e.PickPacket(out)
	if !ok {
		t.Fatal("empty output set")
	}
	if p.SrcIP != natIP {
		t.Errorf("srcIP not translated: %v", p.SrcIP)
	}
	if p.DstIP != ip4.MustParseAddr("8.8.8.8") || p.DstPort != 53 || p.SrcPort != 5353 {
		t.Errorf("untouched fields changed: %+v", p)
	}
}

func TestTransformIdentity(t *testing.T) {
	e := NewEnc(0)
	id := e.NewTransform()
	in := e.F.And(e.Prefix(DstIP, ip4.MustParsePrefix("10.0.0.0/8")), e.FieldEq(Protocol, ProtoTCP))
	if e.Apply(in, id) != in {
		t.Error("identity transform changed the set")
	}
}

func TestTransformPool(t *testing.T) {
	e := NewEnc(0)
	lo := uint32(ip4.MustParseAddr("100.64.0.1"))
	hi := uint32(ip4.MustParseAddr("100.64.0.10"))
	tr := e.NewTransform().SetFieldPool(SrcIP, lo, hi)
	in := e.PacketBDD(Packet{SrcIP: ip4.MustParseAddr("192.168.0.9"), DstIP: ip4.MustParseAddr("1.1.1.1"), Protocol: ProtoTCP})
	out := e.Apply(in, tr)
	// Output srcIP must be exactly the pool.
	got := e.F.Exists(out, srcIPVarSet(e))
	wantDst := e.F.Exists(in, srcIPVarSet(e))
	if got != wantDst {
		t.Error("non-srcIP fields must be unchanged")
	}
	poolSet := e.F.And(out, e.FieldRange(SrcIP, lo, hi))
	if poolSet != out {
		t.Error("output srcIP outside pool")
	}
	if e.F.And(out, e.FieldEq(SrcIP, lo)) == bdd.False || e.F.And(out, e.FieldEq(SrcIP, hi)) == bdd.False {
		t.Error("pool endpoints unreachable")
	}
}

func srcIPVarSet(e *Enc) bdd.VarSet {
	vars := make([]int, 32)
	for b := 0; b < 32; b++ {
		vars[b] = e.L.Var(SrcIP, b)
	}
	return e.F.NewVarSet(vars...)
}

func TestGuardedTransform(t *testing.T) {
	e := NewEnc(0)
	guard := e.Prefix(SrcIP, ip4.MustParsePrefix("192.168.0.0/16"))
	nat := e.NewTransform().SetField(SrcIP, uint32(ip4.MustParseAddr("100.64.0.1")))
	tr := e.Guarded(guard, nat, e.NewTransform())
	inside := e.PacketBDD(Packet{SrcIP: ip4.MustParseAddr("192.168.3.3"), DstIP: ip4.MustParseAddr("9.9.9.9"), Protocol: ProtoTCP})
	outside := e.PacketBDD(Packet{SrcIP: ip4.MustParseAddr("172.16.3.3"), DstIP: ip4.MustParseAddr("9.9.9.9"), Protocol: ProtoTCP})
	pi, _ := e.PickPacket(e.Apply(inside, tr))
	po, _ := e.PickPacket(e.Apply(outside, tr))
	if pi.SrcIP != ip4.MustParseAddr("100.64.0.1") {
		t.Errorf("guarded NAT not applied: %v", pi.SrcIP)
	}
	if po.SrcIP != ip4.MustParseAddr("172.16.3.3") {
		t.Errorf("non-matching packet translated: %v", po.SrcIP)
	}
}

func TestApplyFusedMatchesNaive(t *testing.T) {
	e := NewEnc(0)
	rnd := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		tr := e.NewTransform().
			SetField(SrcIP, rnd.Uint32()).
			SetFieldPool(SrcPort, 1024, 65535)
		in := e.F.And(
			e.Prefix(SrcIP, ip4.Prefix{Addr: ip4.Addr(rnd.Uint32()), Len: uint8(rnd.Intn(25))}),
			e.FieldEq(Protocol, ProtoTCP))
		if e.Apply(in, tr) != e.ApplyNaive(in, tr) {
			t.Fatal("fused Apply disagrees with naive pipeline")
		}
	}
}

func TestReverseApply(t *testing.T) {
	e := NewEnc(0)
	natIP := ip4.MustParseAddr("100.64.0.1")
	guard := e.Prefix(SrcIP, ip4.MustParsePrefix("192.168.0.0/16"))
	tr := e.Guarded(guard, e.NewTransform().SetField(SrcIP, uint32(natIP)), e.NewTransform())
	// What inputs can produce srcIP == natIP? All of 192.168/16 (NATed)
	// plus natIP itself passing through the identity branch.
	out := e.FieldEq(SrcIP, uint32(natIP))
	in := e.ReverseApply(out, tr)
	if e.F.And(in, e.FieldEq(SrcIP, uint32(ip4.MustParseAddr("192.168.9.9")))) == bdd.False {
		t.Error("NATed source missing from reverse image")
	}
	if e.F.And(in, e.FieldEq(SrcIP, uint32(natIP))) == bdd.False {
		t.Error("identity pass-through missing from reverse image")
	}
	if e.F.And(in, e.FieldEq(SrcIP, uint32(ip4.MustParseAddr("10.0.0.1")))) != bdd.False {
		t.Error("impossible source present in reverse image")
	}
}

func TestForwardReverseGalois(t *testing.T) {
	// For any transform and input set: in ⊆ ReverseApply(Apply(in)).
	e := NewEnc(0)
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		tr := e.Guarded(
			e.Prefix(SrcIP, ip4.Prefix{Addr: ip4.Addr(rnd.Uint32()), Len: uint8(rnd.Intn(17))}),
			e.NewTransform().SetField(SrcIP, rnd.Uint32()),
			e.NewTransform())
		in := e.Prefix(DstIP, ip4.Prefix{Addr: ip4.Addr(rnd.Uint32()), Len: uint8(rnd.Intn(17))})
		fwd := e.Apply(in, tr)
		back := e.ReverseApply(fwd, tr)
		if !e.F.Implies(in, back) {
			t.Fatal("in not contained in reverse image of forward image")
		}
	}
}

func TestExtensionBits(t *testing.T) {
	e := NewEnc(4)
	set := e.Prefix(DstIP, ip4.MustParsePrefix("10.0.0.0/8"))
	z1 := e.F.And(set, e.ExtEq(0, 2, 1)) // zone 1 in 2 bits
	if e.F.And(z1, e.ExtEq(0, 2, 2)) != bdd.False {
		t.Error("distinct zone values must be disjoint")
	}
	cleared := e.ClearExt(z1)
	if cleared != set {
		t.Error("ClearExt should recover the zone-free set")
	}
	wp := e.SetBit(set, e.L.ExtVar(3))
	if e.F.Exists(wp, e.F.NewVarSet(e.L.ExtVar(3))) != set {
		t.Error("SetBit changed the header part")
	}
	if e.F.And(wp, e.F.NVar(e.L.ExtVar(3))) != bdd.False {
		t.Error("SetBit did not force the bit")
	}
}

func TestTCPFlagSet(t *testing.T) {
	e := NewEnc(0)
	syn := e.TCPFlagSet(FlagSYN)
	p, ok := e.PickPacket(syn)
	if !ok || p.Protocol != ProtoTCP || p.TCPFlags&FlagSYN == 0 {
		t.Errorf("SYN pick wrong: %+v", p)
	}
	synAck := e.TCPFlagSet(FlagSYN | FlagACK)
	if !e.F.Implies(synAck, syn) {
		t.Error("SYN+ACK must be a subset of SYN")
	}
}

func TestPickPacketPreferences(t *testing.T) {
	e := NewEnc(0)
	set := e.Prefix(DstIP, ip4.MustParsePrefix("10.0.0.0/8"))
	p, ok := e.PickPacket(set,
		e.FieldEq(Protocol, ProtoTCP),
		e.FieldEq(DstPort, 80),
		e.FieldGE(SrcPort, 1024),
	)
	if !ok {
		t.Fatal("pick failed")
	}
	if p.Protocol != ProtoTCP || p.DstPort != 80 || p.SrcPort < 1024 {
		t.Errorf("preferences not honored: %+v", p)
	}
	if !ip4.MustParsePrefix("10.0.0.0/8").Contains(p.DstIP) {
		t.Errorf("picked packet outside set: %+v", p)
	}
}

func TestFieldString(t *testing.T) {
	if DstIP.String() != "dstIp" || FragOffset.String() != "fragmentOffset" {
		t.Error("field names wrong")
	}
}

func TestPacketString(t *testing.T) {
	p := Packet{SrcIP: ip4.MustParseAddr("1.2.3.4"), DstIP: ip4.MustParseAddr("5.6.7.8"), Protocol: ProtoICMP, IcmpType: 8}
	if p.String() == "" {
		t.Error("empty string")
	}
}

func TestSwapSrcDst(t *testing.T) {
	e := NewEnc(0)
	set := e.F.AndN(
		e.Prefix(DstIP, ip4.MustParsePrefix("10.2.0.0/24")),
		e.Prefix(SrcIP, ip4.MustParsePrefix("10.1.0.0/24")),
		e.FieldEq(DstPort, 80),
		e.FieldGE(SrcPort, 1024),
		e.FieldEq(Protocol, ProtoTCP),
	)
	sw := e.F.AndN(
		e.Prefix(SrcIP, ip4.MustParsePrefix("10.2.0.0/24")),
		e.Prefix(DstIP, ip4.MustParsePrefix("10.1.0.0/24")),
		e.FieldEq(SrcPort, 80),
		e.FieldGE(DstPort, 1024),
		e.FieldEq(Protocol, ProtoTCP),
	)
	if e.SwapSrcDst(set) != sw {
		t.Error("SwapSrcDst wrong")
	}
	// Involution.
	if e.SwapSrcDst(e.SwapSrcDst(set)) != set {
		t.Error("SwapSrcDst not involutive")
	}
}
