// Package testnet builds small canonical networks used by tests, examples,
// and benchmarks — including faithful reconstructions of the paper's
// Figure 1b (the non-deterministic BGP border-router pattern) and Figure 2
// (the 3-router dataflow example).
package testnet

import (
	"fmt"

	"repro/internal/acl"
	"repro/internal/config"
	"repro/internal/hdr"
	"repro/internal/ip4"
)

// Dev creates a device and registers it.
func Dev(net *config.Network, name string) *config.Device {
	d := config.NewDevice(name, "vi")
	net.Devices[name] = d
	return d
}

// Iface adds an active interface with one address.
func Iface(d *config.Device, name, addr string) *config.Interface {
	i := &config.Interface{Name: name, Active: true}
	if addr != "" {
		i.Addresses = []ip4.Prefix{ip4.MustParsePrefix(addr)}
	}
	d.Interfaces[name] = i
	return i
}

// OSPFIface enables OSPF on an interface.
func OSPFIface(i *config.Interface, area, cost uint32, passive bool) *config.Interface {
	i.OSPF = &config.OSPFInterface{Area: area, Cost: cost, Passive: passive}
	return i
}

// OSPFProc enables an OSPF process in the default VRF.
func OSPFProc(d *config.Device) *config.OSPFConfig {
	p := &config.OSPFConfig{ProcessID: 1}
	d.VRFs[config.DefaultVRF].OSPF = p
	return p
}

// BGPProc enables a BGP process in the default VRF.
func BGPProc(d *config.Device, asn uint32) *config.BGPConfig {
	p := &config.BGPConfig{ASN: asn}
	d.VRFs[config.DefaultVRF].BGP = p
	return p
}

// Neighbor adds a BGP neighbor.
func Neighbor(p *config.BGPConfig, peer string, remoteAS uint32) *config.BGPNeighbor {
	n := &config.BGPNeighbor{PeerIP: ip4.MustParseAddr(peer), RemoteAS: remoteAS, SendCommunity: true}
	p.Neighbors = append(p.Neighbors, n)
	return n
}

// Static adds a static route to the default VRF.
func Static(d *config.Device, prefix, nextHop string) {
	sr := config.StaticRoute{Prefix: ip4.MustParsePrefix(prefix)}
	if nextHop == "" {
		sr.Drop = true
	} else {
		sr.NextHop = ip4.MustParseAddr(nextHop)
	}
	v := d.VRFs[config.DefaultVRF]
	v.StaticRoutes = append(v.StaticRoutes, sr)
}

// Line3 builds r1 -- r2 -- r3 with OSPF, a LAN on r1 (192.168.1.0/24) and
// r3 (192.168.3.0/24).
func Line3() *config.Network {
	net := config.NewNetwork()
	r1, r2, r3 := Dev(net, "r1"), Dev(net, "r2"), Dev(net, "r3")
	OSPFProc(r1)
	OSPFProc(r2)
	OSPFProc(r3)
	OSPFIface(Iface(r1, "eth0", "10.0.12.1/30"), 0, 10, false)
	OSPFIface(Iface(r2, "eth0", "10.0.12.2/30"), 0, 10, false)
	OSPFIface(Iface(r2, "eth1", "10.0.23.2/30"), 0, 10, false)
	OSPFIface(Iface(r3, "eth0", "10.0.23.3/30"), 0, 10, false)
	OSPFIface(Iface(r1, "lan0", "192.168.1.1/24"), 0, 1, true)
	OSPFIface(Iface(r3, "lan0", "192.168.3.1/24"), 0, 1, true)
	return net
}

// Diamond builds r1 -> {ra, rb} -> r4 with equal OSPF costs (ECMP), LANs on
// r1 and r4.
func Diamond() *config.Network {
	net := config.NewNetwork()
	r1, ra, rb, r4 := Dev(net, "r1"), Dev(net, "ra"), Dev(net, "rb"), Dev(net, "r4")
	for _, d := range []*config.Device{r1, ra, rb, r4} {
		OSPFProc(d)
	}
	OSPFIface(Iface(r1, "up0", "10.0.1.1/30"), 0, 10, false)
	OSPFIface(Iface(ra, "down0", "10.0.1.2/30"), 0, 10, false)
	OSPFIface(Iface(r1, "up1", "10.0.2.1/30"), 0, 10, false)
	OSPFIface(Iface(rb, "down0", "10.0.2.2/30"), 0, 10, false)
	OSPFIface(Iface(ra, "up0", "10.0.3.1/30"), 0, 10, false)
	OSPFIface(Iface(r4, "down0", "10.0.3.2/30"), 0, 10, false)
	OSPFIface(Iface(rb, "up0", "10.0.4.1/30"), 0, 10, false)
	OSPFIface(Iface(r4, "down1", "10.0.4.2/30"), 0, 10, false)
	OSPFIface(Iface(r1, "lan0", "192.168.1.1/24"), 0, 1, true)
	OSPFIface(Iface(r4, "lan0", "192.168.4.1/24"), 0, 1, true)
	return net
}

// EBGPChain builds AS65001(r1) -- AS65002(r2) -- AS65003(r3), with r1
// originating 203.0.113.0/24.
func EBGPChain() *config.Network {
	net := config.NewNetwork()
	r1, r2, r3 := Dev(net, "r1"), Dev(net, "r2"), Dev(net, "r3")
	Iface(r1, "eth0", "10.0.12.1/30")
	Iface(r2, "eth0", "10.0.12.2/30")
	Iface(r2, "eth1", "10.0.23.2/30")
	Iface(r3, "eth0", "10.0.23.3/30")
	b1 := BGPProc(r1, 65001)
	Neighbor(b1, "10.0.12.2", 65002)
	b1.Networks = []ip4.Prefix{ip4.MustParsePrefix("203.0.113.0/24")}
	Static(r1, "203.0.113.0/24", "")
	b2 := BGPProc(r2, 65002)
	Neighbor(b2, "10.0.12.1", 65001)
	Neighbor(b2, "10.0.23.3", 65003)
	b3 := BGPProc(r3, 65003)
	Neighbor(b3, "10.0.23.2", 65002)
	return net
}

// Figure1b reconstructs the paper's Figure 1b: two border routers of AS
// 65000 with iBGP between them (import policy LP 200 preferring internal
// paths) and one external peer each, both advertising 10.0.0.0/8.
func Figure1b() *config.Network {
	net := config.NewNetwork()
	b1, b2 := Dev(net, "border1"), Dev(net, "border2")
	x1, x2 := Dev(net, "ext1"), Dev(net, "ext2")
	Iface(x1, "eth0", "198.51.100.1/30")
	Iface(b1, "ext0", "198.51.100.2/30")
	Iface(x2, "eth0", "198.51.101.1/30")
	Iface(b2, "ext0", "198.51.101.2/30")
	Iface(b1, "core0", "10.255.0.1/30")
	Iface(b2, "core0", "10.255.0.2/30")
	for _, x := range []*config.Device{x1, x2} {
		Static(x, "10.0.0.0/8", "")
	}
	bx1 := BGPProc(x1, 64501)
	Neighbor(bx1, "198.51.100.2", 65000)
	bx1.Networks = []ip4.Prefix{ip4.MustParsePrefix("10.0.0.0/8")}
	bx2 := BGPProc(x2, 64502)
	Neighbor(bx2, "198.51.101.2", 65000)
	bx2.Networks = []ip4.Prefix{ip4.MustParsePrefix("10.0.0.0/8")}
	for i, b := range []*config.Device{b1, b2} {
		b.RouteMaps["PREFER_INTERNAL"] = &config.RouteMap{Name: "PREFER_INTERNAL",
			Clauses: []config.RouteMapClause{{Seq: 10, Action: config.Permit,
				Sets: []config.Set{{Kind: config.SetLocalPref, Value: 200}}}}}
		bp := BGPProc(b, 65000)
		if i == 0 {
			Neighbor(bp, "198.51.100.1", 64501)
			n := Neighbor(bp, "10.255.0.2", 65000)
			n.ImportPolicy = "PREFER_INTERNAL"
			n.NextHopSelf = true
		} else {
			Neighbor(bp, "198.51.101.1", 64502)
			n := Neighbor(bp, "10.255.0.1", 65000)
			n.ImportPolicy = "PREFER_INTERNAL"
			n.NextHopSelf = true
		}
	}
	return net
}

// Figure2 reconstructs the paper's Figure 2 network: three routers with
// per-prefix FIBs (via static routes) and an outbound ACL on R1.i3 that
// allows only ssh traffic.
//
// Prefixes: P1 = 10.0.1.0/24 (behind R2 via R1.i0 side), P2 = 10.0.2.0/24,
// P3 = 10.0.3.0/24 (reached via R1.i3 toward R3).
func Figure2() *config.Network {
	net := config.NewNetwork()
	r1, r2, r3 := Dev(net, "r1"), Dev(net, "r2"), Dev(net, "r3")
	// R1.i0 faces the outside (packet entry), R1.i2 connects to R2,
	// R1.i3 connects to R3.
	Iface(r1, "i0", "10.1.0.1/24")
	Iface(r1, "i2", "10.12.0.1/30")
	Iface(r1, "i3", "10.13.0.1/30")
	Iface(r2, "i1", "10.12.0.2/30")
	Iface(r2, "lan", "10.0.1.1/24") // P1 attached to R2
	Iface(r2, "i2", "10.23.0.1/30")
	Iface(r3, "i1", "10.23.0.2/30")
	Iface(r3, "i2", "10.13.0.2/30")
	Iface(r3, "i0", "10.0.3.1/24")   // P3 attached to R3
	Iface(r2, "lan2", "10.0.2.1/24") // P2 attached to R2

	// Static routing matching the figure's FIBs.
	Static(r1, "10.0.1.0/24", "10.12.0.2") // P1 via R2
	Static(r1, "10.0.2.0/24", "10.12.0.2") // P2 via R2
	Static(r1, "10.0.3.0/24", "10.13.0.2") // P3 via R3 out i3
	Static(r2, "10.0.3.0/24", "10.23.0.2")
	Static(r3, "10.0.1.0/24", "10.23.0.1")
	Static(r3, "10.0.2.0/24", "10.23.0.1")
	Static(r2, "0.0.0.0/0", "10.12.0.1")
	Static(r3, "0.0.0.0/0", "10.13.0.1")

	// Outbound ACL on R1.i3 allowing only ssh (TCP/22).
	ssh := acl.NewLine(acl.Permit, "permit tcp any any eq 22")
	ssh.Protocol = hdr.ProtoTCP
	ssh.DstPorts = []acl.PortRange{{Lo: 22, Hi: 22}}
	r1.ACLs["SSH_ONLY"] = &acl.ACL{Name: "SSH_ONLY", Lines: []acl.Line{ssh}}
	r1.Interfaces["i3"].OutACL = "SSH_ONLY"
	r1.AddRef(config.RefACL, "SSH_ONLY", "interface i3 out")
	return net
}

// Firewall builds a three-node network with a stateful zone firewall in
// the middle: client -- fw -- server. The firewall permits TCP/80
// inside->outside and nothing outside->inside (except sessions).
func Firewall() *config.Network {
	net := config.NewNetwork()
	c, fw, s := Dev(net, "client"), Dev(net, "fw"), Dev(net, "server")
	Iface(c, "eth0", "10.1.0.2/24")
	Iface(fw, "inside0", "10.1.0.1/24")
	Iface(fw, "outside0", "10.2.0.1/24")
	Iface(s, "eth0", "10.2.0.2/24")
	Static(c, "0.0.0.0/0", "10.1.0.1")
	Static(s, "0.0.0.0/0", "10.2.0.1")
	fw.Stateful = true
	fw.Zones["inside"] = &config.Zone{Name: "inside", Interfaces: []string{"inside0"}}
	fw.Zones["outside"] = &config.Zone{Name: "outside", Interfaces: []string{"outside0"}}
	http := acl.NewLine(acl.Permit, "permit http")
	http.Protocol = hdr.ProtoTCP
	http.DstPorts = []acl.PortRange{{Lo: 80, Hi: 80}}
	fw.ACLs["HTTP_OUT"] = &acl.ACL{Name: "HTTP_OUT", Lines: []acl.Line{http}}
	fw.ZonePolicies = []config.ZonePolicy{{FromZone: "inside", ToZone: "outside", ACL: "HTTP_OUT"}}
	return net
}

// ECMPWithBrokenBranch is a Diamond where one branch's last hop filters
// HTTP — the canonical multipath consistency violation.
func ECMPWithBrokenBranch() *config.Network {
	net := Diamond()
	rb := net.Devices["rb"]
	deny := acl.NewLine(acl.Deny, "deny http")
	deny.Protocol = hdr.ProtoTCP
	deny.DstPorts = []acl.PortRange{{Lo: 80, Hi: 80}}
	permit := acl.NewLine(acl.Permit, "permit rest")
	rb.ACLs["NO_HTTP"] = &acl.ACL{Name: "NO_HTTP", Lines: []acl.Line{deny, permit}}
	rb.Interfaces["up0"].OutACL = "NO_HTTP"
	return net
}

// Chain builds a pure-OSPF chain of n routers with a LAN at each end;
// used for scaling micro-benchmarks.
func Chain(n int) *config.Network {
	if n < 2 {
		panic("testnet: chain needs >= 2 nodes")
	}
	net := config.NewNetwork()
	var prev *config.Device
	for i := 0; i < n; i++ {
		d := Dev(net, fmt.Sprintf("r%03d", i))
		OSPFProc(d)
		if prev != nil {
			sub := fmt.Sprintf("10.%d.%d.%d/30", 100+i/64/64%64, i/64%64, i%64*4)
			OSPFIface(Iface(prev, fmt.Sprintf("up%d", i), addrAt(sub, 1)), 0, 10, false)
			OSPFIface(Iface(d, fmt.Sprintf("down%d", i), addrAt(sub, 2)), 0, 10, false)
		}
		prev = d
	}
	OSPFIface(Iface(net.Devices["r000"], "lan0", "192.168.0.1/24"), 0, 1, true)
	OSPFIface(Iface(prev, "lan0", "192.168.255.1/24"), 0, 1, true)
	return net
}

func addrAt(cidr string, host uint32) string {
	p := ip4.MustParsePrefix(cidr)
	return fmt.Sprintf("%s/%d", ip4.Addr(uint32(p.First())+host), p.Len)
}

// BadGadget builds the classic BGP instability gadget: router r0 (AS
// 64500) originates a prefix; r1..r3 (distinct ASes) form a ring, and each
// prefers routes learned from its ring successor (LP 200) over its direct
// path to r0 (LP 100). The configuration has no stable routing solution,
// so a correct simulator must detect and report non-convergence rather
// than force an answer (paper §4.1.2: "It does not, by design, force
// convergence on networks that do not converge in reality").
func BadGadget() *config.Network {
	net := config.NewNetwork()
	r0 := Dev(net, "r0")
	Static(r0, "203.0.113.0/24", "")
	b0 := BGPProc(r0, 64500)
	b0.Networks = []ip4.Prefix{ip4.MustParsePrefix("203.0.113.0/24")}

	names := []string{"r1", "r2", "r3"}
	asns := []uint32{65001, 65002, 65003}
	routers := make([]*config.Device, 3)
	for i, n := range names {
		routers[i] = Dev(net, n)
	}
	// Spoke links r0 <-> ri on 10.0.i.0/30.
	for i := range routers {
		spoke := fmt.Sprintf("10.0.%d", i)
		Iface(r0, fmt.Sprintf("sp%d", i), spoke+".1/30")
		Iface(routers[i], "down0", spoke+".2/30")
		Neighbor(b0, spoke+".2", asns[i])
	}
	// Ring links ri -> r(i+1) on 10.1.i.0/30.
	for i := range routers {
		ring := fmt.Sprintf("10.1.%d", i)
		next := (i + 1) % 3
		Iface(routers[i], "ring-out", ring+".1/30")
		Iface(routers[next], "ring-in", ring+".2/30")
	}
	for i, d := range routers {
		d.RouteMaps["PREFER_RING"] = &config.RouteMap{Name: "PREFER_RING",
			Clauses: []config.RouteMapClause{{Seq: 10, Action: config.Permit,
				Sets: []config.Set{{Kind: config.SetLocalPref, Value: 200}}}}}
		d.RouteMaps["DIRECT"] = &config.RouteMap{Name: "DIRECT",
			Clauses: []config.RouteMapClause{{Seq: 10, Action: config.Permit,
				Sets: []config.Set{{Kind: config.SetLocalPref, Value: 100}}}}}
		bp := BGPProc(d, asns[i])
		spoke := Neighbor(bp, fmt.Sprintf("10.0.%d.1", i), 64500)
		spoke.ImportPolicy = "DIRECT"
		next := (i + 1) % 3
		prev := (i + 2) % 3
		// Session to the successor (we learn their routes, LP 200).
		succ := Neighbor(bp, fmt.Sprintf("10.1.%d.2", i), asns[next])
		succ.ImportPolicy = "PREFER_RING"
		// Session to the predecessor (they learn our routes).
		Neighbor(bp, fmt.Sprintf("10.1.%d.1", prev), asns[prev])
	}
	return net
}
