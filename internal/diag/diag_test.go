package diag

import (
	"strings"
	"testing"
)

func TestCapturePanic(t *testing.T) {
	d := Capture(StageParse, "leaf1", func() { panic("boom") })
	if d == nil {
		t.Fatal("panic not captured")
	}
	if d.Kind != KindPanic || d.Stage != StageParse || d.Device != "leaf1" {
		t.Fatalf("bad diagnostic: %+v", d)
	}
	if !strings.Contains(d.Message, "boom") {
		t.Fatalf("message %q does not name the panic", d.Message)
	}
	if d.Stack == "" {
		t.Fatal("stack not captured")
	}
	if got := Capture(StageParse, "leaf1", func() {}); got != nil {
		t.Fatalf("spurious diagnostic for clean run: %+v", got)
	}
}

type fakeBudgetErr struct{}

func (fakeBudgetErr) Error() string  { return "node budget 10 exceeded" }
func (fakeBudgetErr) IsBudget() bool { return true }

func TestBudgetPanicClassified(t *testing.T) {
	d := Capture(StageAnalysis, "", func() { panic(fakeBudgetErr{}) })
	if d == nil || d.Kind != KindBudget {
		t.Fatalf("budget panic not classified as budget: %+v", d)
	}
	if !strings.Contains(d.Message, "Budget exceeded") {
		t.Fatalf("message %q lacks budget marker", d.Message)
	}
}

func TestSummaryAndFilter(t *testing.T) {
	ds := []Diagnostic{
		{Stage: StageParse, Device: "a", Kind: KindQuarantine, Message: "m1"},
		{Stage: StageDataPlane, Kind: KindBudget, Message: "m2"},
		{Stage: StageParse, Device: "b", Kind: KindQuarantine, Message: "m3"},
	}
	s := Summary(ds)
	for _, want := range []string{"3 diagnostic(s)", "quarantine=2", "budget=1", "parse/a"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
	if got := len(Filter(ds, KindQuarantine)); got != 2 {
		t.Fatalf("Filter quarantine = %d, want 2", got)
	}
	if !Has(ds, KindBudget) || Has(ds, KindCancelled) {
		t.Fatal("Has misreports")
	}
	if Summary(nil) != "no diagnostics" {
		t.Fatal("empty summary wrong")
	}
}
