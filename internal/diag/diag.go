// Package diag defines the structured diagnostic records that carry the
// engine's failure-containment story (the paper's operational core:
// "always produce *some* answer"). Every contained failure — a recovered
// panic, a quarantined device, an exhausted resource budget, a cancelled
// run, a non-converging simulation — becomes a Diagnostic naming the
// pipeline stage and device it happened at, instead of taking down the
// process or silently disappearing.
//
// The package is a leaf: every layer (pipeline, dataplane, reach, core,
// cmd) imports it, it imports only the standard library.
package diag

import (
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
)

// Stage names the pipeline stage a diagnostic originated in.
type Stage string

// Pipeline stages, in execution order.
const (
	StageParse     Stage = "parse"
	StageDataPlane Stage = "dataplane"
	StageFIB       Stage = "fib"
	StageGraph     Stage = "graph"
	StageAnalysis  Stage = "analysis"
	StageQuestion  Stage = "question"
)

// Kind classifies what was contained.
type Kind string

// Diagnostic kinds.
const (
	// KindPanic is a recovered panic: the stage/device failed fatally but
	// the process survived and the rest of the snapshot kept going.
	KindPanic Kind = "panic"
	// KindQuarantine marks a device excluded from the snapshot because its
	// parse or conversion failed fatally (the red-flag analogue of the
	// paper's unrecognized-line warnings, applied to whole devices).
	KindQuarantine Kind = "quarantine"
	// KindBudget is a resource budget trip: BDD node count or
	// exchange-loop iteration budget exceeded; the result is partial.
	KindBudget Kind = "budget"
	// KindCancelled is a context cancellation or deadline expiry.
	KindCancelled Kind = "cancelled"
	// KindNonConvergence is a detected routing oscillation (Figure 1).
	KindNonConvergence Kind = "non-convergence"
	// KindError is a contained, non-fatal error that degraded the result.
	KindError Kind = "error"
)

// Diagnostic is one structured failure record.
type Diagnostic struct {
	Stage   Stage
	Device  string // empty when not attributable to one device
	Kind    Kind
	Message string
	Stack   string // captured goroutine stack for recovered panics
}

func (d Diagnostic) String() string {
	dev := d.Device
	if dev == "" {
		dev = "-"
	}
	return fmt.Sprintf("[%s] %s/%s: %s", d.Kind, d.Stage, dev, d.Message)
}

// budgeter is implemented by error values (e.g. bdd.BudgetError) that
// represent a resource-budget trip, so panic classification does not need
// a dependency on the package that defines them.
type budgeter interface{ IsBudget() bool }

// FromPanic converts a recovered panic value into a Diagnostic, capturing
// the current goroutine's stack. Budget-trip panics (values implementing
// IsBudget) are classified KindBudget; everything else is KindPanic.
func FromPanic(stage Stage, device string, v any) Diagnostic {
	d := Diagnostic{
		Stage:   stage,
		Device:  device,
		Kind:    KindPanic,
		Message: fmt.Sprintf("panic: %v", v),
		Stack:   string(debug.Stack()),
	}
	if b, ok := v.(budgeter); ok && b.IsBudget() {
		d.Kind = KindBudget
		d.Message = fmt.Sprintf("Budget exceeded: %v", v)
		d.Stack = ""
	}
	return d
}

// Capture runs fn, converting a panic into a Diagnostic. It returns nil
// when fn completes normally.
func Capture(stage Stage, device string, fn func()) (d *Diagnostic) {
	defer func() {
		if v := recover(); v != nil {
			dd := FromPanic(stage, device, v)
			d = &dd
		}
	}()
	fn()
	return nil
}

// Filter returns the diagnostics of one kind.
func Filter(ds []Diagnostic, k Kind) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds {
		if d.Kind == k {
			out = append(out, d)
		}
	}
	return out
}

// Has reports whether any diagnostic of kind k is present.
func Has(ds []Diagnostic, k Kind) bool {
	for _, d := range ds {
		if d.Kind == k {
			return true
		}
	}
	return false
}

// Summary renders a compact per-kind count plus one line per diagnostic
// (stacks elided), for CLI and log output.
func Summary(ds []Diagnostic) string {
	if len(ds) == 0 {
		return "no diagnostics"
	}
	counts := make(map[Kind]int)
	for _, d := range ds {
		counts[d.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	var b strings.Builder
	fmt.Fprintf(&b, "%d diagnostic(s):", len(ds))
	for _, k := range kinds {
		fmt.Fprintf(&b, " %s=%d", k, counts[Kind(k)])
	}
	for _, d := range ds {
		b.WriteString("\n  ")
		b.WriteString(d.String())
	}
	return b.String()
}
