// Benchmarks regenerating the paper's evaluation (§6): one benchmark per
// table/figure, plus ablations for the design choices DESIGN.md calls out.
// See EXPERIMENTS.md for measured results and paper-vs-measured notes.
package repro_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/apt"
	"repro/internal/bdd"
	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/dataplane"
	"repro/internal/fwdgraph"
	"repro/internal/hdr"
	"repro/internal/ip4"
	"repro/internal/netgen"
	"repro/internal/nod"
	"repro/internal/pipeline"
	"repro/internal/reach"
	"repro/internal/routing"
	"repro/internal/server"
	"repro/internal/sweep"
	"repro/internal/testnet"
	"repro/internal/topo"
)

// ---------------------------------------------------------------------------
// E1 / Figure 1: deterministic convergence. The naive lockstep schedule
// oscillates on the Figure 1b pattern (bounded by MaxIterations); the
// production colored schedule converges in a handful of iterations.

func BenchmarkFigure1(b *testing.B) {
	b.Run("lockstep", func(b *testing.B) {
		iters := 0
		osc := 0
		for i := 0; i < b.N; i++ {
			r := dataplane.Run(testnet.Figure1b(), dataplane.Options{
				Schedule: dataplane.ScheduleLockstep, MaxIterations: 100})
			iters += r.BGPIterations
			if r.Oscillation {
				osc++
			}
		}
		b.ReportMetric(float64(iters)/float64(b.N), "iterations/op")
		b.ReportMetric(float64(osc)/float64(b.N), "oscillations/op")
	})
	b.Run("colored", func(b *testing.B) {
		iters := 0
		for i := 0; i < b.N; i++ {
			r := dataplane.Run(testnet.Figure1b(), dataplane.Options{})
			if !r.Converged {
				b.Fatal("colored schedule must converge")
			}
			iters += r.BGPIterations
		}
		b.ReportMetric(float64(iters)/float64(b.N), "iterations/op")
	})
}

// ---------------------------------------------------------------------------
// E2 / Figure 2: dataflow graph construction on the paper's example.

func BenchmarkFigure2GraphBuild(b *testing.B) {
	dp := dataplane.Run(testnet.Figure2(), dataplane.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := fwdgraph.New(dp)
		if len(g.Edges) == 0 {
			b.Fatal("empty graph")
		}
	}
}

// ---------------------------------------------------------------------------
// E3 / Figure 3: current vs original Batfish — parsing, data plane
// generation (imperative vs Datalog), and data plane verification
// (multipath consistency: BDD engine vs NoD/SAT).
//
// The Datalog and NoD baselines run on a scaled-down NET1 (the original
// architecture cannot complete the full 75-device network in benchmark
// time — which is the point of Figure 3); the current engines run on the
// same scaled workload so the speedup ratios are like-for-like.

func net1Mini() *config.Network {
	snap := netgen.Campus(netgen.CampusParams{Name: "n1m", Core: 3, Areas: 2, AccessPerArea: 2, LansPerAccess: 1})
	net, _ := snap.Parse()
	return net
}

func BenchmarkFigure3(b *testing.B) {
	b.Run("Parse/NET1", func(b *testing.B) {
		snap := netgen.Catalog()[0].Gen()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net, _ := snap.Parse()
			if len(net.Devices) != 75 {
				b.Fatal("bad parse")
			}
		}
	})
	b.Run("DPgen/original-datalog", func(b *testing.B) {
		net := net1Mini()
		for i := 0; i < b.N; i++ {
			cp := datalog.NewControlPlane(net, 100)
			cp.Run()
			if cp.E.FactCount() == 0 {
				b.Fatal("no facts")
			}
		}
	})
	b.Run("DPgen/current-imperative", func(b *testing.B) {
		net := net1Mini()
		for i := 0; i < b.N; i++ {
			r := dataplane.Run(net1MiniCopy(net), dataplane.Options{})
			if !r.Converged {
				b.Fatal("no convergence")
			}
		}
	})
	b.Run("Verify/original-nod", func(b *testing.B) {
		dp := dataplane.Run(net1Mini(), dataplane.Options{})
		for i := 0; i < b.N; i++ {
			e := nod.New(dp)
			_, _ = e.MultipathConsistency(len(dp.Network.Devices) + 1)
		}
	})
	b.Run("Verify/current-bdd", func(b *testing.B) {
		dp := dataplane.Run(net1Mini(), dataplane.Options{})
		for i := 0; i < b.N; i++ {
			a := reach.New(fwdgraph.New(dp))
			_ = a.MultipathConsistency(bdd.True)
		}
	})
}

// net1MiniCopy regenerates the network (the simulator mutates VRF state
// holders hanging off the parsed config between runs).
func net1MiniCopy(_ *config.Network) *config.Network { return net1Mini() }

// ---------------------------------------------------------------------------
// E5 / Table 2: full-pipeline performance per catalog network. Larger
// networks run only without -short (and the largest via
// `cmd/batfish -table2 -nets 11`).

func BenchmarkTable2(b *testing.B) {
	specs := netgen.Catalog()
	limit := 3
	if !testing.Short() {
		limit = 5
	}
	for _, sp := range specs[:limit] {
		sp := sp
		b.Run(sp.Name+"/parse", func(b *testing.B) {
			snap := sp.Gen()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap.Parse()
			}
		})
		b.Run(sp.Name+"/dpgen", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				net, _ := sp.Gen().Parse()
				b.StartTimer()
				r := dataplane.Run(net, dataplane.Options{Parallelism: runtime.NumCPU()})
				if !r.Converged {
					b.Fatalf("%s did not converge", sp.Name)
				}
			}
		})
		b.Run(sp.Name+"/destreach", func(b *testing.B) {
			net, _ := sp.Gen().Parse()
			dp := dataplane.Run(net, dataplane.Options{Parallelism: runtime.NumCPU()})
			names := net.DeviceNames()
			dst := names[len(names)/2]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := reach.New(fwdgraph.New(dp))
				if len(a.DestReachability(dst, bdd.True)) == 0 {
					b.Fatal("nothing reaches dst")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E6 / §6.2: BDD engine vs Atomic Predicates on the 92-node NET2
// (the APT paper's largest network is 92 nodes). Times include building
// the engine's data structures plus one destination reachability query,
// matching the paper's "builds the dataflow graph and answers destination
// reachability queries" comparison. The APT baseline is exercised on a
// filter-free variant (APT does not model transformations or the richer
// pipeline).

func BenchmarkAPT(b *testing.B) {
	gen := netgen.Fabric(netgen.FabricParams{Name: "net2", Spines: 4, Pods: 8,
		AggPerPod: 2, TorPerPod: 9, HostNetsPerTor: 2, Multipath: true})
	net, _ := gen.Parse()
	dp := dataplane.Run(net, dataplane.Options{Parallelism: runtime.NumCPU()})
	if !dp.Converged {
		b.Fatal("no convergence")
	}
	dst := net.DeviceNames()[10]
	b.Run("bdd-engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := reach.New(fwdgraph.New(dp))
			if len(a.DestReachability(dst, bdd.True)) == 0 {
				b.Fatal("no reachability")
			}
		}
	})
	b.Run("atomic-predicates", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := fwdgraph.New(dp)
			a, err := apt.New(g)
			if err != nil {
				b.Fatal(err)
			}
			if len(a.DestReachability(dst)) == 0 {
				b.Fatal("no reachability")
			}
			b.ReportMetric(float64(a.NumAtoms), "atoms")
		}
	})
}

// ---------------------------------------------------------------------------
// E7 / §4.1.3: attribute interning. Builds the BGP route load of a fabric
// simulation with and without the interned 13-property attribute object
// and reports bytes per route plus the route:combination ratio the paper
// cites as "typically 10x–20x".

func BenchmarkIntern(b *testing.B) {
	const routes = 100_000
	const combos = 64 // distinct attribute combinations in the workload
	mkAttrs := func(i int) routing.BGPAttrs {
		return routing.BGPAttrs{
			AdminDistance: 20,
			LocalPref:     100 + uint32(i%4)*10,
			MED:           uint32(i % 4),
			Origin:        routing.OriginIGP,
			FromAS:        65000 + uint32(i%4),
			ReceivedFrom:  ip4.Addr(0x0a000001 + uint32(i%combos)),
		}
	}
	b.Run("interned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pool := routing.NewPool()
			rts := make([]routing.Route, routes)
			path := pool.ASPath(65001, 65002)
			comms := pool.CommunitySet(65000<<16 | 100)
			for j := range rts {
				a := mkAttrs(j)
				a.ASPath = path
				a.Communities = comms
				rts[j] = routing.Route{
					Prefix:   ip4.Prefix{Addr: ip4.Addr(j << 8), Len: 24},
					Protocol: routing.EBGP,
					Attrs:    pool.Attrs(a),
				}
			}
			st := pool.Stats()
			b.ReportMetric(float64(routes)/float64(st.UniqueAttrs), "routes/combination")
		}
	})
	b.Run("not-interned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pool := routing.NewPool()
			rts := make([]routing.Route, routes)
			path := pool.ASPath(65001, 65002)
			comms := pool.CommunitySet(65000<<16 | 100)
			for j := range rts {
				a := mkAttrs(j)
				a.ASPath = path
				a.Communities = comms
				attrs := new(routing.BGPAttrs) // one fresh object per route
				*attrs = a
				rts[j] = routing.Route{
					Prefix:   ip4.Prefix{Addr: ip4.Addr(j << 8), Len: 24},
					Protocol: routing.EBGP,
					Attrs:    attrs,
				}
			}
		}
	})
}

// BenchmarkConvergenceMemory compares the delta-based convergence check
// with the classic full-state method (§4.1.3 ablation).
func BenchmarkConvergenceMemory(b *testing.B) {
	gen := netgen.Fabric(netgen.FabricParams{Name: "cm", Spines: 4, Pods: 4,
		AggPerPod: 2, TorPerPod: 6, HostNetsPerTor: 1, Multipath: true})
	for _, mode := range []struct {
		name string
		full bool
	}{{"deltas", false}, {"full-state", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				net, _ := gen.Parse()
				b.StartTimer()
				r := dataplane.Run(net, dataplane.Options{FullStateConvergence: mode.full})
				if !r.Converged {
					b.Fatal("no convergence")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E8 / §4.2.2: BDD variable order. The paper orders header fields by
// constraint frequency with MSB-first bits. The ablation compiles the same
// prefix corpus with LSB-first bit order and reports total BDD nodes.

func BenchmarkVarOrder(b *testing.B) {
	prefixes := make([]ip4.Prefix, 0, 512)
	for i := 0; i < 512; i++ {
		prefixes = append(prefixes, ip4.Prefix{
			Addr: ip4.Addr(0x0a000000 | uint32(i)<<12), Len: uint8(16 + i%16),
		})
	}
	compile := func(f *bdd.Factory, varOf func(bit int) int) bdd.Ref {
		total := bdd.False
		for _, p := range prefixes {
			r := bdd.True
			for bit := int(p.Len) - 1; bit >= 0; bit-- {
				v := varOf(bit)
				if p.Addr.Bit(bit) {
					r = f.And(f.Var(v), r)
				} else {
					r = f.And(f.NVar(v), r)
				}
			}
			total = f.Or(total, r)
		}
		return total
	}
	b.Run("msb-first", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := bdd.NewFactory(32)
			compile(f, func(bit int) int { return bit })
			b.ReportMetric(float64(f.Size()), "total-bdd-nodes")
		}
	})
	b.Run("lsb-first", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := bdd.NewFactory(32)
			compile(f, func(bit int) int { return 31 - bit })
			b.ReportMetric(float64(f.Size()), "total-bdd-nodes")
		}
	})
}

// ---------------------------------------------------------------------------
// E9 / §4.2.3 ablations.

// BenchmarkCompress: graph compression on/off for a full all-sources
// reachability pass.
func BenchmarkCompress(b *testing.B) {
	net, _ := netgen.Fabric(netgen.FabricParams{Name: "gc", Spines: 2, Pods: 3,
		AggPerPod: 2, TorPerPod: 4, HostNetsPerTor: 1, Multipath: true, EdgeACLs: true}).Parse()
	dp := dataplane.Run(net, dataplane.Options{})
	g := fwdgraph.New(dp)
	for _, mode := range []struct {
		name     string
		compress bool
	}{{"compressed", true}, {"uncompressed", false}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			a := reach.NewWithOptions(g, reach.Options{Compress: mode.compress})
			b.ReportMetric(float64(a.EdgeCount()), "edges")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.Forward(a.SourceSets(bdd.True))
			}
		})
	}
}

// BenchmarkReverse: single-destination queries via backward propagation vs
// one forward pass per source.
func BenchmarkReverse(b *testing.B) {
	net, _ := netgen.Fabric(netgen.FabricParams{Name: "rv", Spines: 2, Pods: 3,
		AggPerPod: 2, TorPerPod: 4, HostNetsPerTor: 1, Multipath: true}).Parse()
	dp := dataplane.Run(net, dataplane.Options{})
	g := fwdgraph.New(dp)
	a := reach.New(g)
	dst := net.DeviceNames()[3]
	// Sanity: both must agree.
	back := a.DestReachability(dst, bdd.True)
	fwd := a.DestReachabilityForward(dst, bdd.True)
	if len(back) != len(fwd) {
		b.Fatalf("reverse/forward disagree: %d vs %d sources", len(back), len(fwd))
	}
	b.Run("backward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.DestReachability(dst, bdd.True)
		}
	})
	b.Run("forward-per-source", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.DestReachabilityForward(dst, bdd.True)
		}
	})
}

// BenchmarkRelProd: the fused AND+exists+rename NAT application vs the
// three-step pipeline (§4.2.3 "we implemented an optimized BDD operation
// to execute these three steps simultaneously").
func BenchmarkRelProd(b *testing.B) {
	enc := hdr.NewEnc(0)
	tr := enc.NewTransform().
		SetField(hdr.SrcIP, uint32(ip4.MustParseAddr("100.64.0.1"))).
		SetFieldPool(hdr.SrcPort, 1024, 65535)
	guard := enc.Prefix(hdr.SrcIP, ip4.MustParsePrefix("10.0.0.0/8"))
	full := enc.Guarded(guard, tr, enc.NewTransform())
	sets := make([]bdd.Ref, 64)
	for i := range sets {
		sets[i] = enc.F.AndN(
			enc.Prefix(hdr.DstIP, ip4.Prefix{Addr: ip4.Addr(uint32(i) << 24), Len: 8}),
			enc.Prefix(hdr.SrcIP, ip4.Prefix{Addr: ip4.Addr(0x0a000000 + uint32(i)<<8), Len: 24}),
			enc.FieldEq(hdr.Protocol, hdr.ProtoTCP),
		)
	}
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			enc.Apply(sets[i%len(sets)], full)
		}
	})
	b.Run("three-step", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			enc.ApplyNaive(sets[i%len(sets)], full)
		}
	})
}

// BenchmarkParallelism: simulation speedup from intra-color parallelism
// (§4.1.1 "we can also speed up the computation by introducing high levels
// of parallelism") on a 204-device fat-tree, under the phase-fused colored
// schedule. Each worker count reports allocs/op plus two metrics:
//
//   - "speedup": wall-clock ratio of the serial ns/op to this run's
//     ns/op. Physically bounded by the host's core count — on a 1-CPU CI
//     box this hovers around 1.0 no matter how good the schedule is.
//   - "sched-speedup": the schedule-model speedup. One traced serial run
//     records every phase task's duration (dataplane.SchedTrace); the
//     model then replays the same tasks under the pool's greedy
//     list-scheduling onto p virtual workers and reports total/(serial
//     residue + Σ per-phase makespans). This measures what the fused
//     schedule achieves given p real cores, independent of host core
//     count; it is the regression-gated metric (make bench-check).
func BenchmarkParallelism(b *testing.B) {
	gen := netgen.Fabric(netgen.FabricParams{Name: "pp", Spines: 4, Pods: 10,
		AggPerPod: 2, TorPerPod: 18, HostNetsPerTor: 1, Multipath: true})
	if n := gen.Devices; len(n) < 200 {
		b.Fatalf("fabric too small: %d devices", len(n))
	}

	// One traced serial run feeds the schedule model for every level.
	trace := &dataplane.SchedTrace{}
	netT, _ := gen.Parse()
	base := time.Now()
	rT := dataplane.Run(netT, dataplane.Options{
		Parallelism: 1,
		Schedule:    dataplane.ScheduleColored,
		Trace:       trace,
		NowNanos:    func() int64 { return time.Since(base).Nanoseconds() },
	})
	if !rT.Converged {
		b.Fatal("traced run did not converge")
	}
	tracedNs := time.Since(base).Nanoseconds()

	levels := []int{1, 2, 4, 8}
	if g := runtime.GOMAXPROCS(0); g > 8 {
		levels = append(levels, g)
	}
	var serialNs float64
	for _, par := range levels {
		par := par
		b.Run(fmt.Sprintf("dev-%d/workers-%d", len(gen.Devices), par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				net, _ := gen.Parse()
				b.StartTimer()
				r := dataplane.Run(net, dataplane.Options{Parallelism: par, Schedule: dataplane.ScheduleColored})
				if !r.Converged {
					b.Fatal("no convergence")
				}
			}
			nsOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if par == 1 {
				serialNs = nsOp
			} else if serialNs > 0 {
				b.ReportMetric(serialNs/nsOp, "speedup")
			}
			if par > 1 {
				b.ReportMetric(trace.ModelSpeedup(tracedNs, par), "sched-speedup")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E9: staged pipeline with content-addressed caching — the edit-one-
// device-re-verify loop (the dominant operator workload per the config
// test-coverage literature). "cold-full" loads both snapshots through a
// caching-disabled pipeline and recomputes everything, which is the
// pre-pipeline behavior; "incremental" edits a warm baseline so unchanged
// parse artifacts are reused, unimpacted flows keep their memoized
// answers, and CompareWith re-examines only the edit's blast radius. The
// incremental variant reports a speedup-vs-cold metric plus the pipeline
// cache/stage counters and the routing intern-pool counters for the
// benchjson trajectory.
func BenchmarkIncrementalCompare(b *testing.B) {
	gen := netgen.Fabric(netgen.FabricParams{Name: "inc", Spines: 4, Pods: 10,
		AggPerPod: 2, TorPerPod: 18, HostNetsPerTor: 1, Multipath: true})
	if len(gen.Devices) < 200 {
		b.Fatalf("fabric too small: %d devices", len(gen.Devices))
	}
	texts := make(map[string]string, len(gen.Devices))
	for _, dt := range gen.Devices {
		texts[dt.Hostname] = dt.Text
	}
	const tor = "inc-p05-tor09"
	if _, ok := texts[tor]; !ok {
		b.Fatalf("no device %s", tor)
	}
	// Each iteration applies a different edit (so the data-plane stage
	// never gets a trivial whole-snapshot cache hit): null-route half of
	// the first ToR's host subnet — breaking delivered flows — plus a
	// varying unused prefix.
	edited := func(i int) string {
		t := strings.TrimSuffix(texts[tor], "end\n")
		return t + fmt.Sprintf("ip route 203.0.%d.0 255.255.255.0 Null0\n", i%256) +
			"ip route 10.0.0.0 255.255.255.128 Null0\nend\n"
	}
	verify := func(b *testing.B, base, after *core.Snapshot) {
		if after.DataPlane().Fingerprint() == 0 {
			b.Fatal("zero fingerprint")
		}
		if len(after.Reachability(core.ReachabilityParams{})) == 0 {
			b.Fatal("no flows")
		}
		if len(base.CompareWith(after)) == 0 {
			b.Fatal("blackhole edit must break flows")
		}
	}

	var coldNs float64
	b.Run("cold-full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base := core.LoadTextWith(pipeline.Disabled(), texts)
			afterTexts := make(map[string]string, len(texts))
			for k, v := range texts {
				afterTexts[k] = v
			}
			afterTexts[tor] = edited(i)
			after := core.LoadTextWith(pipeline.Disabled(), afterTexts)
			verify(b, base, after)
		}
		coldNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	b.Run("incremental", func(b *testing.B) {
		pl := pipeline.New(pipeline.Config{})
		base := core.LoadTextWith(pl, texts)
		if len(base.Reachability(core.ReachabilityParams{})) == 0 {
			b.Fatal("no baseline flows")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			after := base.Edit(map[string]string{tor: edited(i)})
			verify(b, base, after)
		}
		b.StopTimer()
		nsOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		if coldNs > 0 {
			b.ReportMetric(coldNs/nsOp, "speedup")
		}
		st := pl.Stats()
		b.ReportMetric(float64(st.Store.Hits), "cache-hits")
		b.ReportMetric(float64(st.Store.Misses), "cache-misses")
		b.ReportMetric(float64(st.Store.Evictions), "cache-evictions")
		stage := func(name string, t pipeline.StageTimes) {
			b.ReportMetric(float64(t.ColdNs)/1e6, "stage-"+name+"-cold-ms")
			b.ReportMetric(float64(t.WarmNs)/1e6, "stage-"+name+"-warm-ms")
		}
		stage("parse", st.Parse)
		stage("dp", st.DataPlane)
		stage("graph", st.Graph)
		stage("analysis", st.Analysis)
		ist := base.DataPlane().Pool.Stats()
		b.ReportMetric(float64(ist.AttrHits), "intern-attr-hits")
		b.ReportMetric(float64(ist.AttrMisses), "intern-attr-misses")
		b.ReportMetric(float64(ist.PathHits), "intern-path-hits")
		b.ReportMetric(float64(ist.PathMisses), "intern-path-misses")
	})
}

// ---------------------------------------------------------------------------
// E12: the resilient analysis service. `request` measures steady-state
// HTTP question latency against a warm batfishd engine and reports the
// service's own p50/p99 window; `warm-restart` measures a full
// start → load → first-answer cycle cold (empty cache directory) vs warm
// (persistent cache populated by a previous "process"), the restart
// scenario the disk tier exists for.

func BenchmarkServer(b *testing.B) {
	gen := netgen.Fabric(netgen.FabricParams{Name: "sv", Spines: 2, Pods: 4,
		AggPerPod: 2, TorPerPod: 6, HostNetsPerTor: 1, Multipath: true})
	texts := make(map[string]string, len(gen.Devices))
	for _, dt := range gen.Devices {
		texts[dt.Hostname] = dt.Text
	}
	body, err := json.Marshal(map[string]any{"configs": texts})
	if err != nil {
		b.Fatal(err)
	}
	// startAndAsk boots a server over httptest, loads the snapshot, and
	// answers one reachability question; it returns the server for metric
	// scraping and keeps ts open until cleanup.
	startAndAsk := func(b *testing.B, cacheDir string) (*server.Server, *httptest.Server) {
		b.Helper()
		srv, err := server.New(server.Config{CacheDir: cacheDir, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		resp, err := http.Post(ts.URL+"/snapshots/prod", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("load: %d", resp.StatusCode)
		}
		resp, err = http.Get(ts.URL + "/snapshots/prod/reachability")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("question: %d", resp.StatusCode)
		}
		return srv, ts
	}

	b.Run("request", func(b *testing.B) {
		srv, ts := startAndAsk(b, "")
		defer ts.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Get(ts.URL + "/snapshots/prod/reachability")
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		b.StopTimer()
		m := srv.Metrics()
		b.ReportMetric(m.P50Ms, "server-p50-ms")
		b.ReportMetric(m.P99Ms, "server-p99-ms")
	})

	b.Run("warm-restart", func(b *testing.B) {
		dir := b.TempDir()
		start := time.Now()
		_, ts := startAndAsk(b, dir) // cold: populates the persistent cache
		coldNs := float64(time.Since(start).Nanoseconds())
		ts.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, ts := startAndAsk(b, dir)
			ts.Close()
		}
		b.StopTimer()
		warmNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		if warmNs > 0 {
			b.ReportMetric(coldNs/warmNs, "server-warm-speedup")
		}
		b.ReportMetric(coldNs/1e6, "server-cold-start-ms")
		b.ReportMetric(warmNs/1e6, "server-warm-start-ms")
	})
}

// ---------------------------------------------------------------------------
// E13: the failure-scenario sweep. A k=1 link+node sweep over the
// dev-204 fabric with one pod-local monitored flow: blast-radius
// equivalence classes prune the scenarios whose failed element cannot
// touch the monitored cone (the spines and nine of the ten pods), and the
// survivors run incrementally on a worker pool. The benchmark asserts the
// ISSUE 7 exit bars — ≥50% of scenarios pruned, ≥5x faster than naive
// cold per-scenario re-analysis — and spot-checks sampled executed and
// pruned verdicts against independent cold recomputations, reporting all
// of it as sweep-* metrics for the benchjson trajectory.
func BenchmarkSweep(b *testing.B) {
	gen := netgen.Fabric(netgen.FabricParams{Name: "swp", Spines: 4, Pods: 10,
		AggPerPod: 2, TorPerPod: 18, HostNetsPerTor: 1, Multipath: true})
	if len(gen.Devices) < 200 {
		b.Fatalf("fabric too small: %d devices", len(gen.Devices))
	}
	texts := make(map[string]string, len(gen.Devices))
	for _, dt := range gen.Devices {
		texts[dt.Hostname] = dt.Text
	}
	base := core.LoadTextWith(pipeline.New(pipeline.Config{}), texts)
	const srcTor, dstTor = "swp-p03-tor01", "swp-p03-tor02"
	var srcs []reach.SourceLoc
	for _, s := range base.HostFacing() {
		if s.Device == srcTor {
			srcs = append(srcs, s)
		}
	}
	if len(srcs) == 0 {
		b.Fatalf("no host-facing sources on %s", srcTor)
	}
	var dst ip4.Prefix
	for _, in := range base.Net.Devices[dstTor].InterfaceNames() {
		if strings.HasPrefix(in, "host") {
			p := base.Net.Devices[dstTor].Interfaces[in].Addresses[0]
			dst = ip4.Prefix{Addr: p.Addr, Len: p.Len}.Canonical()
			break
		}
	}
	// One worker per available CPU: each worker owns a private pipeline
	// whose construction costs a full base analysis, so oversubscribing a
	// small machine only multiplies that fixed cost.
	spec := sweep.Spec{Workers: runtime.GOMAXPROCS(0), Sources: srcs, DstIPs: []ip4.Prefix{dst}}
	params := core.ReachabilityParams{Sources: srcs, DstIPs: []ip4.Prefix{dst}}

	// scenarioFromID reverses Element.ID for the cold replays (only the
	// link/node kinds this sweep enumerates).
	scenarioFromID := func(id string) core.Scenario {
		var sc core.Scenario
		for _, el := range strings.Split(id, "+") {
			kind, rest, _ := strings.Cut(el, ":")
			switch kind {
			case "node":
				sc.NodesDown = append(sc.NodesDown, rest)
			case "link":
				halves := strings.Split(rest, "<->")
				n1, i1, _ := strings.Cut(halves[0], ":")
				n2, i2, _ := strings.Cut(halves[1], ":")
				sc.LinksDown = append(sc.LinksDown,
					topo.Link{Node1: n1, Iface1: i1, Node2: n2, Iface2: i2})
			default:
				b.Fatalf("unsupported element in %q", el)
			}
		}
		return sc
	}
	// coldRun replays one scenario from scratch — fresh cache-disabled
	// pipeline, full parse and simulation — returning the per-source
	// delivery verdicts and the wall time: the "no sweep engine" baseline.
	coldRun := func(id string) (map[reach.SourceLoc]bool, time.Duration) {
		t0 := time.Now()
		snap := core.LoadTextWith(pipeline.Disabled(), texts).Apply(scenarioFromID(id))
		flows := snap.Reachability(params)
		if snap.Degraded() {
			b.Fatalf("cold replay of %s degraded", id)
		}
		got := make(map[reach.SourceLoc]bool, len(flows))
		for _, fr := range flows {
			got[fr.Source] = fr.Delivered != bdd.False
		}
		return got, time.Since(t0)
	}
	checkAgainstCold := func(v sweep.Verdict, cold map[reach.SourceLoc]bool) {
		for _, sv := range v.Sources {
			if cold[reach.SourceLoc{Device: sv.Device, Iface: sv.Iface}] != sv.Delivered {
				b.Fatalf("scenario %s (executed=%v): stamped verdict for %s/%s differs from cold replay",
					v.Scenario, v.Executed, sv.Device, sv.Iface)
			}
		}
	}

	b.Run("k1-links-nodes", func(b *testing.B) {
		var res *sweep.Result
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plan, err := sweep.NewPlan(base, spec)
			if err != nil {
				b.Fatal(err)
			}
			r, err := plan.Execute(context.Background(), nil)
			if err != nil {
				b.Fatal(err)
			}
			if r.Degraded {
				b.Fatal("sweep degraded")
			}
			res = r
		}
		b.StopTimer()
		wallMs := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / 1e6

		pruneRatio := float64(res.Pruned) / float64(res.Enumerated)
		if pruneRatio < 0.5 {
			b.Fatalf("prune ratio %.2f below the 0.5 floor (%d of %d pruned)",
				pruneRatio, res.Pruned, res.Enumerated)
		}
		// Naive baseline: mean of three sampled cold per-scenario replays,
		// extrapolated to the full enumeration. The samples double as
		// verdict-identity checks for executed representatives; three more
		// pruned scenarios check that stamped verdicts match cold replays.
		var coldTotal time.Duration
		coldRuns, prunedChecked := 0, 0
		for _, v := range res.Verdicts {
			if v.Executed && coldRuns < 2 {
				cold, d := coldRun(v.Scenario)
				checkAgainstCold(v, cold)
				coldTotal += d
				coldRuns++
			}
			// Pruned scenarios include the baseline class (Class == ""):
			// elements wholly outside the monitored cone, stamped from the
			// no-failure verdicts — the pruning claim under test.
			if !v.Executed && prunedChecked < 2 {
				cold, _ := coldRun(v.Scenario)
				checkAgainstCold(v, cold)
				prunedChecked++
			}
		}
		if coldRuns == 0 || prunedChecked == 0 {
			b.Fatalf("sampling found %d executed / %d pruned scenarios", coldRuns, prunedChecked)
		}
		naiveMs := float64(coldTotal.Nanoseconds()) / float64(coldRuns) / 1e6 * float64(res.Enumerated)
		speedup := naiveMs / wallMs
		if speedup < 5 {
			b.Fatalf("sweep speedup %.1fx below the 5x floor (wall %.0fms, naive est %.0fms)",
				speedup, wallMs, naiveMs)
		}

		b.ReportMetric(float64(res.Enumerated), "sweep-enumerated")
		b.ReportMetric(float64(res.Classes), "sweep-classes")
		b.ReportMetric(float64(res.Executed), "sweep-executed")
		b.ReportMetric(float64(res.Pruned), "sweep-pruned")
		b.ReportMetric(pruneRatio, "sweep-prune-ratio")
		b.ReportMetric(float64(res.Violations), "sweep-violations")
		b.ReportMetric(wallMs, "sweep-wall-ms")
		b.ReportMetric(naiveMs, "sweep-naive-est-ms")
		b.ReportMetric(speedup, "sweep-speedup")
		b.ReportMetric(float64(coldRuns+prunedChecked), "sweep-spotcheck-ok")
	})
}

// ---------------------------------------------------------------------------
// E14: the clustered service. Two costs define the mode: what a
// forwarding hop adds to a question answered by another member, and how
// long the cluster takes to evict a dead member (the window during which
// its snapshots are unreachable before failover re-homes them). Reported
// as cluster-* metrics; `benchjson -check` enforces that failover p99
// stays inside the detector's budget and the forwarding overhead stays
// bounded.
func BenchmarkCluster(b *testing.B) {
	gen := netgen.Fabric(netgen.FabricParams{Name: "cl", Spines: 2, Pods: 2,
		AggPerPod: 2, TorPerPod: 2, HostNetsPerTor: 1, Multipath: true})
	texts := make(map[string]string, len(gen.Devices))
	for _, dt := range gen.Devices {
		texts[dt.Hostname] = dt.Text
	}
	body, err := json.Marshal(map[string]any{"configs": texts})
	if err != nil {
		b.Fatal(err)
	}
	hb := 50 * time.Millisecond
	startNode := func(b *testing.B, id, join string) (*cluster.Node, *httptest.Server) {
		b.Helper()
		srv, err := server.New(server.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		n, err := cluster.NewNode(cluster.Config{ID: id, Server: srv, Heartbeat: hb})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(n.Handler())
		b.Cleanup(ts.Close)
		b.Cleanup(n.Kill)
		if err := n.Start(context.Background(), ts.URL, join); err != nil {
			b.Fatal(err)
		}
		return n, ts
	}
	get := func(b *testing.B, url string) {
		b.Helper()
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
	}

	b.Run("forward-overhead", func(b *testing.B) {
		n1, ts1 := startNode(b, "m1", "")
		_, ts2 := startNode(b, "m2", ts1.URL)
		// Find a snapshot m2 owns so asking through m1 costs one hop.
		name := ""
		for i := 0; i < 4096 && name == ""; i++ {
			cand := fmt.Sprintf("snap%04d", i)
			if cluster.OwnerOf(n1.View().Members, cand).ID == "m2" {
				name = cand
			}
		}
		if name == "" {
			b.Fatal("no m2-owned snapshot name found")
		}
		resp, err := http.Post(ts2.URL+"/snapshots/"+name, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("load: %d", resp.StatusCode)
		}
		q := "/snapshots/" + name + "/reachability"
		get(b, ts2.URL+q) // warm the snapshot before timing anything

		t0 := time.Now()
		for i := 0; i < b.N; i++ {
			get(b, ts2.URL+q) // owner answers directly
		}
		localNs := float64(time.Since(t0).Nanoseconds()) / float64(b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			get(b, ts1.URL+q) // one forwarding hop through m1
		}
		b.StopTimer()
		fwdNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(localNs/1e6, "cluster-local-question-ms")
		b.ReportMetric(fwdNs/1e6, "cluster-forwarded-question-ms")
		b.ReportMetric((fwdNs-localNs)/1e6, "cluster-forward-hop-ms")
		if localNs > 0 {
			b.ReportMetric(fwdNs/localNs, "cluster-forward-overhead")
		}
	})

	b.Run("failover", func(b *testing.B) {
		coord, cts := startNode(b, "m1", "")
		// SuspectAfter defaults to two heartbeats; the acceptance budget is
		// that window plus detector-tick and heartbeat slack.
		budget := 4 * hb
		episodes := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := fmt.Sprintf("victim-%d", i)
			n, ts := startNode(b, id, cts.URL)
			// Joined synchronously; kill it and time the eviction.
			ts.Listener.Close()
			ts.CloseClientConnections()
			n.Kill()
			t0 := time.Now()
			for {
				in := false
				for _, m := range coord.View().Members {
					if m.ID == id {
						in = true
						break
					}
				}
				if !in {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			episodes = append(episodes, time.Since(t0))
		}
		b.StopTimer()
		sort.Slice(episodes, func(i, j int) bool { return episodes[i] < episodes[j] })
		pct := func(p float64) float64 {
			idx := int(p * float64(len(episodes)-1))
			return float64(episodes[idx].Nanoseconds()) / 1e6
		}
		b.ReportMetric(pct(0.50), "cluster-failover-p50-ms")
		b.ReportMetric(pct(0.99), "cluster-failover-p99-ms")
		b.ReportMetric(float64(budget.Nanoseconds())/1e6, "cluster-failover-budget-ms")
	})

	// A node starter with a disk cache: coordinator failover and heir
	// replication both anchor on it (the lease lives there, and the
	// replicator warms it).
	startDiskNode := func(b *testing.B, id, join, dir string, ccfg cluster.Config) (*cluster.Node, *httptest.Server) {
		b.Helper()
		srv, err := server.New(server.Config{Seed: 1, CacheDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		ccfg.ID = id
		ccfg.Server = srv
		n, err := cluster.NewNode(ccfg)
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(n.Handler())
		b.Cleanup(ts.Close)
		b.Cleanup(n.Kill)
		if err := n.Start(context.Background(), ts.URL, join); err != nil {
			b.Fatal(err)
		}
		return n, ts
	}

	b.Run("coordinator-failover", func(b *testing.B) {
		// ISSUE 9 exit bar: losing the coordinator may cost at most twice
		// the member-eviction budget — detection is the same suspicion
		// window, the extra factor covers waiting out the dead
		// coordinator's last lease grant before the race is winnable.
		budget := 2 * (4 * hb)
		episodes := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dir := b.TempDir()
			ccfg := cluster.Config{Heartbeat: hb}
			coord, cts := startDiskNode(b, "coord", "", dir, ccfg)
			member, _ := startDiskNode(b, "member", cts.URL, dir, ccfg)
			cts.Listener.Close()
			cts.CloseClientConnections()
			coord.Kill()
			t0 := time.Now()
			for member.Metrics().Role != cluster.RoleCoordinator {
				if time.Since(t0) > 20*budget {
					b.Fatalf("member never promoted (iteration %d): %+v", i, member.Metrics())
				}
				time.Sleep(2 * time.Millisecond)
			}
			episodes = append(episodes, time.Since(t0))
		}
		b.StopTimer()
		sort.Slice(episodes, func(i, j int) bool { return episodes[i] < episodes[j] })
		pct := func(p float64) float64 {
			idx := int(p * float64(len(episodes)-1))
			return float64(episodes[idx].Nanoseconds()) / 1e6
		}
		b.ReportMetric(pct(0.50), "cluster-coord-failover-p50-ms")
		b.ReportMetric(pct(0.99), "cluster-coord-failover-p99-ms")
		b.ReportMetric(float64(budget.Nanoseconds())/1e6, "cluster-coord-failover-budget-ms")
	})

	b.Run("heir-replication", func(b *testing.B) {
		// Split cache directories force the replicator to move every
		// artifact over HTTP; the warm-hit rate is the fraction of the
		// owner's artifact keys present on the heir once replication
		// settles (1.0 = failover rehydration fully warm), and the warm
		// time is how long one snapshot takes to get there.
		var rates []float64
		warm := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ccfg := cluster.Config{Heartbeat: hb, ReplicateEvery: hb}
			owner, ts1 := startDiskNode(b, "owner", "", b.TempDir(), ccfg)
			heir, _ := startDiskNode(b, "heir", ts1.URL, b.TempDir(), ccfg)
			name := ""
			for j := 0; j < 4096 && name == ""; j++ {
				cand := fmt.Sprintf("snap%04d", j)
				if cluster.OwnerOf(owner.View().Members, cand).ID == "owner" {
					name = cand
				}
			}
			if name == "" {
				b.Fatal("no owner-owned snapshot name found")
			}
			resp, err := http.Post(ts1.URL+"/snapshots/"+name, "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("load: %d", resp.StatusCode)
			}
			get(b, ts1.URL+"/snapshots/"+name+"/reachability") // commit the dataplane artifact
			t0 := time.Now()
			var rs cluster.ReplicationStatus
			for {
				rs = heir.Metrics().Replication
				if rs.Keys > 0 && rs.Lag == 0 {
					break
				}
				if time.Since(t0) > 30*time.Second {
					break // report the shortfall instead of hanging
				}
				time.Sleep(2 * time.Millisecond)
			}
			warm = append(warm, time.Since(t0))
			rates = append(rates, float64(rs.Keys-rs.Lag)/float64(max(rs.Keys, 1)))
		}
		b.StopTimer()
		sort.Slice(warm, func(i, j int) bool { return warm[i] < warm[j] })
		rate := 0.0
		for _, r := range rates {
			rate += r
		}
		rate /= float64(len(rates))
		b.ReportMetric(rate, "cluster-heir-warm-hit-rate")
		b.ReportMetric(float64(warm[len(warm)/2].Nanoseconds())/1e6, "cluster-heir-warm-p50-ms")
	})
}
