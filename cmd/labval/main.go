// Command labval runs the ground-truth validation labs (paper §4.3.1) and
// the differential engine cross-validation (§4.3.2) over every lab
// snapshot. It is designed to run continuously (e.g. daily in CI),
// "reducing the risk of regressions as Batfish code evolves".
//
// Usage:
//
//	labval [-labs DIR] [-samples N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fidelity"
)

func main() {
	var (
		labsDir = flag.String("labs", "internal/fidelity/labs", "directory of lab snapshots")
		samples = flag.Int("samples", 200, "FIB samples for cross-validation")
	)
	flag.Parse()

	labs, err := fidelity.LoadAllLabs(*labsDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "labval:", err)
		os.Exit(1)
	}
	failures := 0
	for _, lab := range labs {
		fmt.Printf("=== lab %s (%d expectations)\n", lab.Name, len(lab.Expects))
		for _, f := range lab.Validate() {
			fmt.Println("  FAIL", f)
			failures++
		}
		dp := lab.Snapshot.DataPlane()
		for _, m := range fidelity.CrossValidate(dp, 3, *samples, 1) {
			fmt.Println("  FAIL", m)
			failures++
		}
	}
	if failures > 0 {
		fmt.Printf("%d failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("all labs validated; engines agree")
}
