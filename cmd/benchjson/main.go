// Command benchjson converts `go test -bench` output into a dated JSON
// file, giving the repository a perf trajectory: each PR can run the
// benchmarks and commit a BENCH_<date>.json snapshot that later PRs diff
// against.
//
// Usage:
//
//	go test -bench . -benchmem | go run ./cmd/benchjson [-o DIR]
//
// The emitter parses the standard benchmark line format — name, run
// count, ns/op, optional B/op and allocs/op, and any custom metrics
// (e.g. the simulator's iterations/op or speedup) — plus the goos/
// goarch/pkg/cpu preamble.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	NsPerOp float64            `json:"ns_per_op"`
	BPerOp  float64            `json:"bytes_per_op,omitempty"`
	Allocs  float64            `json:"allocs_per_op,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the emitted document. Pipeline aggregates the staged-pipeline
// counters that caching-aware benchmarks report as custom metrics —
// artifact-cache hit/miss/eviction counts (cache-*), per-stage cold vs
// warm wall times (stage-*), and routing intern-pool counters (intern-*)
// — so trajectory diffs can track cache effectiveness without digging
// through per-benchmark metric maps. Server does the same for the
// analysis service's metrics (server-*): request latency percentiles and
// the warm-restart speedup the persistent cache buys.
type File struct {
	Date     string             `json:"date"`
	GOOS     string             `json:"goos,omitempty"`
	GOARCH   string             `json:"goarch,omitempty"`
	Pkg      string             `json:"pkg,omitempty"`
	CPU      string             `json:"cpu,omitempty"`
	Results  []Result           `json:"results"`
	Pipeline map[string]float64 `json:"pipeline,omitempty"`
	Server   map[string]float64 `json:"server,omitempty"`
}

// summarize collects metrics matching any of the prefixes across all
// results, summing when more than one benchmark reports the same counter.
func summarize(results []Result, prefixes ...string) map[string]float64 {
	var sum map[string]float64
	for _, r := range results {
		for name, v := range r.Metrics {
			matched := false
			for _, p := range prefixes {
				if strings.HasPrefix(name, p) {
					matched = true
					break
				}
			}
			if !matched {
				continue
			}
			if sum == nil {
				sum = make(map[string]float64)
			}
			sum[name] += v
		}
	}
	return sum
}

func main() {
	outDir := flag.String("o", ".", "directory for BENCH_<date>.json")
	flag.Parse()

	doc := File{Date: time.Now().UTC().Format("2006-01-02")}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	doc.Pipeline = summarize(doc.Results, "cache-", "stage-", "intern-")
	doc.Server = summarize(doc.Results, "server-")

	path := filepath.Join(*outDir, "BENCH_"+doc.Date+".json")
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d results)\n", path, len(doc.Results))
}

// parseLine handles "BenchmarkName-8  10  123 ns/op  4 B/op  2 allocs/op
// 1.5 custom/op". Fields come in (value, unit) pairs after the run count.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BPerOp = v
		case "allocs/op":
			r.Allocs = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[strings.TrimSuffix(unit, "/op")] = v
		}
	}
	return r, true
}
