// Command benchjson converts `go test -bench` output into a dated JSON
// file, giving the repository a perf trajectory: each PR can run the
// benchmarks and commit a BENCH_<date>.json snapshot that later PRs diff
// against.
//
// Usage:
//
//	go test -bench . -benchmem | go run ./cmd/benchjson [-o DIR] [-diff]
//	go run ./cmd/benchjson -check [FILE]
//
// The emitter parses the standard benchmark line format — name, run
// count, ns/op, optional B/op and allocs/op, and any custom metrics
// (e.g. the simulator's iterations/op or speedup) — plus the goos/
// goarch/pkg/cpu preamble.
//
// With -diff the emitter also compares the fresh snapshot against the
// most recent prior BENCH_*.json in the output directory and prints
// per-benchmark deltas (ns/op, allocations, and custom metrics shared by
// both snapshots), so a PR's perf effect is visible in its log without
// opening two JSON files.
//
// -check is the regression gate (`make bench-check`): it loads a
// snapshot — the named FILE, or the newest BENCH_*.json under -o — and
// enforces the committed perf floors:
//
//   - the dev-204 parallel benchmark's sched-speedup at 8 workers must be
//     at least -speedup-floor (the ISSUE 6 exit bar, default 4.0);
//   - interned route churn must not be slower than non-interned
//     (BenchmarkIntern/interned ns/op ≤ BenchmarkIntern/not-interned);
//   - when a sweep snapshot is present, the failure sweep must prune at
//     least half of the enumerated scenarios (sweep-prune-ratio ≥ 0.5)
//     and beat naive cold per-scenario re-analysis by at least 5x
//     (sweep-speedup ≥ 5), the ISSUE 7 exit bars;
//   - when a cluster snapshot is present, member-failure eviction p99
//     must land inside the detector's budget (cluster-failover-p99-ms ≤
//     cluster-failover-budget-ms) and a forwarded question must cost at
//     most 2x a local one (cluster-forward-overhead ≤ 2.0), the ISSUE 8
//     exit bars;
//   - when the coordinator-failover metrics are present, promotion p99
//     must land inside twice the member-eviction budget
//     (cluster-coord-failover-p99-ms ≤ cluster-coord-failover-budget-ms)
//     and the heir replicator must keep at least 90% of inheritable
//     artifacts warm (cluster-heir-warm-hit-rate ≥ 0.9), the ISSUE 9
//     exit bars.
//
// Violations exit nonzero with one line per failed floor.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	NsPerOp float64            `json:"ns_per_op"`
	BPerOp  float64            `json:"bytes_per_op,omitempty"`
	Allocs  float64            `json:"allocs_per_op,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the emitted document. Pipeline aggregates the staged-pipeline
// counters that caching-aware benchmarks report as custom metrics —
// artifact-cache hit/miss/eviction counts (cache-*), per-stage cold vs
// warm wall times (stage-*), and routing intern-pool counters (intern-*)
// — so trajectory diffs can track cache effectiveness without digging
// through per-benchmark metric maps. Server does the same for the
// analysis service's metrics (server-*): request latency percentiles and
// the warm-restart speedup the persistent cache buys. Sweep aggregates
// the failure-sweep engine's metrics (sweep-*): scenarios enumerated,
// equivalence classes after pruning, scenarios executed, wall time, and
// violations found. Cluster aggregates the clustered service's metrics
// (cluster-*): member-failure eviction latency percentiles against the
// detector's budget, and the cost a forwarding hop adds to a question.
type File struct {
	Date     string             `json:"date"`
	GOOS     string             `json:"goos,omitempty"`
	GOARCH   string             `json:"goarch,omitempty"`
	Pkg      string             `json:"pkg,omitempty"`
	CPU      string             `json:"cpu,omitempty"`
	Results  []Result           `json:"results"`
	Pipeline map[string]float64 `json:"pipeline,omitempty"`
	Server   map[string]float64 `json:"server,omitempty"`
	Sweep    map[string]float64 `json:"sweep,omitempty"`
	Cluster  map[string]float64 `json:"cluster,omitempty"`
}

// summarize collects metrics matching any of the prefixes across all
// results, summing when more than one benchmark reports the same counter.
func summarize(results []Result, prefixes ...string) map[string]float64 {
	var sum map[string]float64
	for _, r := range results {
		for name, v := range r.Metrics {
			matched := false
			for _, p := range prefixes {
				if strings.HasPrefix(name, p) {
					matched = true
					break
				}
			}
			if !matched {
				continue
			}
			if sum == nil {
				sum = make(map[string]float64)
			}
			sum[name] += v
		}
	}
	return sum
}

func main() {
	outDir := flag.String("o", ".", "directory for BENCH_<date>.json")
	diff := flag.Bool("diff", false, "after writing, print deltas vs the previous BENCH_*.json in the output directory")
	check := flag.Bool("check", false, "enforce perf floors on a snapshot (FILE arg, or newest BENCH_*.json under -o) instead of reading stdin")
	speedupFloor := flag.Float64("speedup-floor", 4.0, "minimum sched-speedup for the dev-204 benchmark at 8 workers (with -check)")
	flag.Parse()

	if *check {
		os.Exit(runCheck(*outDir, flag.Arg(0), *speedupFloor))
	}

	doc := File{Date: time.Now().UTC().Format("2006-01-02")}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	doc.Pipeline = summarize(doc.Results, "cache-", "stage-", "intern-")
	doc.Server = summarize(doc.Results, "server-")
	doc.Sweep = summarize(doc.Results, "sweep-")
	doc.Cluster = summarize(doc.Results, "cluster-")

	path := filepath.Join(*outDir, "BENCH_"+doc.Date+".json")
	prev := ""
	if *diff {
		// Resolve the baseline before writing, so a same-day rerun diffs
		// against the previous day's snapshot rather than itself.
		prev = latestSnapshot(*outDir, path)
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d results)\n", path, len(doc.Results))

	if *diff {
		if prev == "" {
			fmt.Println("diff: no previous BENCH_*.json to compare against")
			return
		}
		base, err := loadSnapshot(prev)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: diff:", err)
			os.Exit(1)
		}
		printDiff(os.Stdout, base, &doc, filepath.Base(prev))
	}
}

// latestSnapshot returns the lexically greatest BENCH_*.json in dir other
// than exclude. Dates are zero-padded ISO, so lexical order is date order.
func latestSnapshot(dir, exclude string) string {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return ""
	}
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		if filepath.Clean(matches[i]) != filepath.Clean(exclude) {
			return matches[i]
		}
	}
	return ""
}

func loadSnapshot(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &f, nil
}

// printDiff reports per-benchmark deltas for every name present in both
// snapshots, plus the names that appeared or disappeared. Deltas are
// signed percentages for ns/op (negative = faster) and raw old→new for
// custom metrics, which are not uniformly better in one direction.
func printDiff(w *os.File, base, cur *File, baseName string) {
	old := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		old[r.Name] = r
	}
	fmt.Fprintf(w, "diff vs %s:\n", baseName)
	var added []string
	seen := make(map[string]bool, len(cur.Results))
	for _, r := range cur.Results {
		seen[r.Name] = true
		o, ok := old[r.Name]
		if !ok {
			added = append(added, r.Name)
			continue
		}
		fmt.Fprintf(w, "  %-56s %12.0f -> %-12.0f ns/op  %+6.1f%%", r.Name, o.NsPerOp, r.NsPerOp, pct(o.NsPerOp, r.NsPerOp))
		if o.Allocs > 0 || r.Allocs > 0 {
			fmt.Fprintf(w, "  allocs %+6.1f%%", pct(o.Allocs, r.Allocs))
		}
		fmt.Fprintln(w)
		names := make([]string, 0, len(r.Metrics))
		for name := range r.Metrics {
			if _, ok := o.Metrics[name]; ok {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "      %-52s %12.3g -> %.3g\n", name, o.Metrics[name], r.Metrics[name])
		}
	}
	for _, r := range base.Results {
		if !seen[r.Name] {
			fmt.Fprintf(w, "  %-56s removed\n", r.Name)
		}
	}
	for _, name := range added {
		fmt.Fprintf(w, "  %-56s new\n", name)
	}
}

func pct(old, cur float64) float64 {
	if old == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (cur - old) / old * 100
}

// runCheck enforces the committed perf floors on a snapshot and returns
// the process exit code. Benchmark names are matched by substring so the
// GOMAXPROCS suffix and device count stay out of the contract; the
// dev-204 fabric is located by the "/workers-8" leaf of the Parallelism
// benchmark, which only the full-size run emits.
func runCheck(dir, file string, speedupFloor float64) int {
	if file == "" {
		file = latestSnapshot(dir, "")
		if file == "" {
			fmt.Fprintln(os.Stderr, "benchjson: check: no BENCH_*.json found in", dir)
			return 1
		}
	}
	doc, err := loadSnapshot(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: check:", err)
		return 1
	}

	failures := 0
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchjson: check: FAIL: "+format+"\n", args...)
		failures++
	}

	// Floor 1: parallel sched-speedup at 8 workers on the 204-device fabric.
	found := false
	for _, r := range doc.Results {
		if !strings.Contains(r.Name, "Parallelism") || !strings.Contains(r.Name, "/workers-8") {
			continue
		}
		found = true
		s, ok := r.Metrics["sched-speedup"]
		if !ok {
			fail("%s reports no sched-speedup metric", r.Name)
			continue
		}
		if s < speedupFloor {
			fail("%s sched-speedup %.2f below floor %.2f", r.Name, s, speedupFloor)
		} else {
			fmt.Printf("benchjson: check: ok: %s sched-speedup %.2f >= %.2f\n", r.Name, s, speedupFloor)
		}
	}
	if !found {
		fail("no Parallelism */workers-8 result in %s", file)
	}

	// Floor 2: interning must pay for itself per operation.
	var interned, notInterned *Result
	for i, r := range doc.Results {
		switch {
		case strings.Contains(r.Name, "Intern/not-interned"):
			notInterned = &doc.Results[i]
		case strings.Contains(r.Name, "Intern/interned"):
			interned = &doc.Results[i]
		}
	}
	switch {
	case interned == nil || notInterned == nil:
		fail("missing BenchmarkIntern results in %s (interned=%v, not-interned=%v)",
			file, interned != nil, notInterned != nil)
	case interned.NsPerOp > notInterned.NsPerOp:
		fail("interned %.0f ns/op slower than not-interned %.0f ns/op",
			interned.NsPerOp, notInterned.NsPerOp)
	default:
		fmt.Printf("benchjson: check: ok: interned %.0f ns/op <= not-interned %.0f ns/op\n",
			interned.NsPerOp, notInterned.NsPerOp)
	}

	// Floor 3: the failure sweep's pruning and speedup bars. Gated on the
	// summary's presence so snapshots predating the sweep engine still
	// pass; once a sweep snapshot is committed, regressions fail here.
	if doc.Sweep != nil {
		if pr, ok := doc.Sweep["sweep-prune-ratio"]; !ok {
			fail("sweep summary reports no sweep-prune-ratio metric")
		} else if pr < 0.5 {
			fail("sweep-prune-ratio %.2f below floor 0.50", pr)
		} else {
			fmt.Printf("benchjson: check: ok: sweep-prune-ratio %.2f >= 0.50\n", pr)
		}
		if sp, ok := doc.Sweep["sweep-speedup"]; !ok {
			fail("sweep summary reports no sweep-speedup metric")
		} else if sp < 5 {
			fail("sweep-speedup %.1f below floor 5.0", sp)
		} else {
			fmt.Printf("benchjson: check: ok: sweep-speedup %.1f >= 5.0\n", sp)
		}
	}

	// Floor 4: the clustered service's bars, gated like the sweep's on the
	// summary's presence. Failover p99 must land inside the detector's own
	// budget (emitted by the benchmark as cluster-failover-budget-ms:
	// suspicion window + heartbeat slack), and a forwarding hop must not
	// dominate question cost.
	if doc.Cluster != nil {
		p99, okP99 := doc.Cluster["cluster-failover-p99-ms"]
		budget, okBudget := doc.Cluster["cluster-failover-budget-ms"]
		switch {
		case !okP99 || !okBudget:
			fail("cluster summary missing failover metrics (p99=%v, budget=%v)", okP99, okBudget)
		case p99 > budget:
			fail("cluster-failover-p99-ms %.0f over budget %.0f", p99, budget)
		default:
			fmt.Printf("benchjson: check: ok: cluster-failover-p99-ms %.0f <= budget %.0f\n", p99, budget)
		}
		if ov, ok := doc.Cluster["cluster-forward-overhead"]; !ok {
			fail("cluster summary reports no cluster-forward-overhead metric")
		} else if ov > 2.0 {
			fail("cluster-forward-overhead %.2fx above ceiling 2.0x", ov)
		} else {
			fmt.Printf("benchjson: check: ok: cluster-forward-overhead %.2fx <= 2.0x\n", ov)
		}

		// Floor 5 (ISSUE 9): coordinator failover and heir replication,
		// gated on their metrics' presence so cluster snapshots predating
		// lease-based failover still pass. Promoting a new coordinator may
		// cost at most twice the member-eviction budget (the benchmark
		// emits the budget as cluster-coord-failover-budget-ms), and the
		// heir replicator must have at least 90% of the owner's artifact
		// keys warm once it settles.
		if cp99, ok := doc.Cluster["cluster-coord-failover-p99-ms"]; ok {
			cbudget, okBudget := doc.Cluster["cluster-coord-failover-budget-ms"]
			switch {
			case !okBudget:
				fail("cluster summary has coord-failover p99 but no budget")
			case cp99 > cbudget:
				fail("cluster-coord-failover-p99-ms %.0f over budget %.0f", cp99, cbudget)
			default:
				fmt.Printf("benchjson: check: ok: cluster-coord-failover-p99-ms %.0f <= budget %.0f\n", cp99, cbudget)
			}
		}
		if hr, ok := doc.Cluster["cluster-heir-warm-hit-rate"]; ok {
			if hr < 0.9 {
				fail("cluster-heir-warm-hit-rate %.2f below floor 0.90", hr)
			} else {
				fmt.Printf("benchjson: check: ok: cluster-heir-warm-hit-rate %.2f >= 0.90\n", hr)
			}
		}
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: check: %d floor violation(s) in %s\n", failures, file)
		return 1
	}
	fmt.Printf("benchjson: check: all floors hold in %s\n", file)
	return 0
}

// parseLine handles "BenchmarkName-8  10  123 ns/op  4 B/op  2 allocs/op
// 1.5 custom/op". Fields come in (value, unit) pairs after the run count.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BPerOp = v
		case "allocs/op":
			r.Allocs = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[strings.TrimSuffix(unit, "/op")] = v
		}
	}
	return r, true
}
