// Command netgen materializes the synthetic benchmark networks as
// configuration files on disk, so they can be inspected, versioned, or fed
// back through `batfish -snapshot`.
//
// Usage:
//
//	netgen -net NET1 -out DIR     # write one catalog network
//	netgen -list                  # list the catalog
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/netgen"
)

func main() {
	var (
		name = flag.String("net", "", "catalog network to generate (NET1..NET11)")
		out  = flag.String("out", "", "output directory for configuration files")
		list = flag.Bool("list", false, "list the catalog")
	)
	flag.Parse()

	specs := netgen.Catalog()
	if *list {
		fmt.Printf("%-7s %-12s %8s\n", "Name", "Type", "Devices")
		for _, sp := range specs {
			fmt.Printf("%-7s %-12s %8d\n", sp.Name, sp.Type, sp.ExpectDevices)
		}
		return
	}
	if *name == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	for _, sp := range specs {
		if sp.Name != *name {
			continue
		}
		snap := sp.Gen()
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for _, d := range snap.Devices {
			path := filepath.Join(*out, d.Hostname+".cfg")
			if err := os.WriteFile(path, []byte(d.Text), 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d configs (%d LoC) to %s\n", len(snap.Devices), snap.LoC(), *out)
		return
	}
	fatal(fmt.Errorf("unknown network %q", *name))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netgen:", err)
	os.Exit(1)
}
