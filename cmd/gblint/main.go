// Command gblint runs the repo-invariant static analyzer suite
// (internal/lint, DESIGN.md §7) over package directories.
//
// Usage:
//
//	gblint [-json] [-checks determinism,lock-io,...] [-list] [packages...]
//
// Packages are directory patterns relative to the module root:
// "./..." (default), "./internal/...", or single directories like
// "./internal/server". Exit codes: 0 clean, 1 findings reported,
// 2 usage or load/type-check failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("gblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := lint.Select(*checks)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := loader.Packages(patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	// Type-check failures make analyses unreliable; fail loudly rather
	// than silently passing a tree the analyzers could not see.
	bad := false
	for _, p := range pkgs {
		for _, e := range p.TypeErrs {
			fmt.Fprintf(stderr, "gblint: %s: %v\n", p.Path, e)
			bad = true
		}
	}
	if bad {
		return 2
	}
	findings := lint.Run(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stdout, "gblint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}
