// Command gblint runs the repo-invariant static analyzer suite
// (internal/lint, DESIGN.md §7) over package directories.
//
// Usage:
//
//	gblint [-json] [-checks determinism,lock-io,...] [-cache dir] [-list] [packages...]
//
// Packages are directory patterns relative to the module root:
// "./..." (default), "./internal/...", or single directories like
// "./internal/server". Exit codes: 0 clean, 1 findings reported,
// 2 usage or load/type-check failure.
//
// -cache memoizes whole runs: when no file in the linted packages or
// their module-internal import closure changed since the last run
// with the same -checks, the stored findings replay without
// type-checking (see internal/lint/cache.go for why invalidation is
// whole-module). Only completed runs (exit 0 or 1) are stored.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("gblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	cacheDir := fs.String("cache", "", "directory for the run cache (empty: no caching)")
	list := fs.Bool("list", false, "list available checks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := lint.Select(*checks)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	key := ""
	if *cacheDir != "" {
		// A key failure (unreadable file, syntax error) is not fatal: the
		// full run will report it properly, so just skip the cache.
		if key, err = loader.RunKey(patterns, *checks); err == nil {
			if findings, ok := lint.CacheGet(*cacheDir, key); ok {
				return report(findings, *jsonOut, stdout, stderr)
			}
		} else {
			key = ""
		}
	}
	pkgs, err := loader.Packages(patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	// Type-check failures make analyses unreliable; fail loudly rather
	// than silently passing a tree the analyzers could not see.
	bad := false
	for _, p := range pkgs {
		for _, e := range p.TypeErrs {
			fmt.Fprintf(stderr, "gblint: %s: %v\n", p.Path, e)
			bad = true
		}
	}
	if bad {
		return 2
	}
	findings := lint.Run(pkgs, analyzers)
	if key != "" {
		// Store only completed runs; exit-2 paths never reach here.
		if err := lint.CachePut(*cacheDir, key, findings); err != nil {
			fmt.Fprintf(stderr, "gblint: writing cache entry: %v\n", err)
		}
	}
	return report(findings, *jsonOut, stdout, stderr)
}

// report prints the findings (fresh or replayed from cache) and maps
// them to the exit code.
func report(findings []lint.Finding, jsonOut bool, stdout, stderr *os.File) int {
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		if !jsonOut {
			fmt.Fprintf(stdout, "gblint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}
