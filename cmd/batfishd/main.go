// Command batfishd runs the analysis engine as a long-lived HTTP service:
// load named snapshots once, ask questions many times, and survive the
// failure modes a shared service meets — overload, transient faults,
// crashes, and repeatedly degraded snapshots.
//
// Quick start:
//
//	batfishd -addr :8866 -cache /var/cache/batfishd &
//	curl -X PUT localhost:8866/snapshots/prod -d '{"configs":{"r1":"hostname r1\n..."}}'
//	curl 'localhost:8866/snapshots/prod/reachability'
//	curl 'localhost:8866/snapshots/prod/service-reachable?dst=10.0.0.0/24&port=443'
//	curl -X POST localhost:8866/snapshots/prod/edit -d '{"as":"candidate","changes":{"r1":"..."}}'
//	curl 'localhost:8866/snapshots/prod/compare?with=candidate'
//
// Operational endpoints: /healthz (liveness), /readyz (flips to 503 when
// draining), /metrics (JSON counters incl. request latency percentiles
// and cache tiers), /debug/vars (expvar).
//
// With -cache DIR the pipeline keeps a crash-safe persistent artifact
// tier: a restarted batfishd rehydrates parse and data-plane artifacts
// from disk (checksummed; corrupt entries are quarantined and recomputed)
// instead of re-simulating, so warm restarts answer in a fraction of the
// cold time.
//
// SIGINT/SIGTERM drains gracefully: readiness flips, new requests are
// shed with 503 + Retry-After, and in-flight requests finish (bounded by
// -drain-timeout). Exit code 0 on a clean drain, 1 otherwise.
//
// Cluster mode (-cluster-listen, optionally -cluster-join) runs several
// batfishd processes as one service: snapshots are owned by rendezvous
// hash, requests for another member's snapshot are forwarded
// transparently, a heartbeat failure detector evicts dead members, and
// with a shared -cache directory the inheriting member warm-starts from
// the dead member's artifacts. With -failover (default on) the
// coordinator itself fails over through a lease on the shared cache, and
// with -replicate-heirs (default on) each member pre-fetches artifacts
// for the snapshots it would inherit, so failover never pays a cold
// parse. See the cluster quick start in README.md.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8866", "listen address")
		cacheDir     = flag.String("cache", "", "persistent artifact cache directory (empty = memory only)")
		cacheMax     = flag.Int64("cache-max", 0, "persistent cache size bound in bytes (0 = default)")
		concurrency  = flag.Int("concurrency", 0, "max concurrently executing requests (0 = default)")
		queue        = flag.Int("queue", 0, "max queued requests before shedding 429 (0 = default)")
		queueWait    = flag.Duration("queue-wait", 0, "max time a request may queue (0 = default)")
		reqTimeout   = flag.Duration("timeout", 0, "per-request analysis deadline (0 = default)")
		retries      = flag.Int("retries", 0, "transient-failure retries per question (0 = default, -1 disables)")
		brThreshold  = flag.Int("breaker-threshold", 0, "consecutive failures tripping a snapshot's breaker (0 = default, -1 disables)")
		brCooldown   = flag.Duration("breaker-cooldown", 0, "how long a tripped breaker rejects (0 = default)")
		storeCap     = flag.Int("store-capacity", 0, "in-memory artifact store capacity (0 = default)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
		faultSpec    = flag.String("faults", "", "fault-injection spec, e.g. \"server:*=sleep:100ms,diskcache:write=panic:1\"")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/")

		clusterJoin   = flag.String("cluster-join", "", "coordinator URL to join (empty with -cluster-listen = run as coordinator)")
		clusterListen = flag.String("cluster-listen", "", "advertised base URL for cluster mode, e.g. http://10.0.0.5:8866 (enables clustering)")
		memberID      = flag.String("member-id", "", "stable cluster member identity (default hostname-pid)")
		heartbeat     = flag.Duration("heartbeat", 0, "cluster heartbeat interval (0 = default 1s); failure suspected after 2 intervals")
		failover      = flag.Bool("failover", true, "lease-based coordinator failover over the shared -cache (cluster mode)")
		replicate     = flag.Bool("replicate-heirs", true, "proactively replicate artifacts for snapshots this member is heir to (cluster mode)")
	)
	flag.Parse()

	if *faultSpec != "" {
		inj, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batfishd: bad -faults: %v\n", err)
			os.Exit(2)
		}
		restore := faults.Activate(inj)
		defer restore()
		fmt.Fprintf(os.Stderr, "fault injection active: %s\n", inj.Describe())
	}

	srv, err := server.New(server.Config{
		MaxConcurrent:    *concurrency,
		MaxQueue:         *queue,
		QueueWait:        *queueWait,
		RequestTimeout:   *reqTimeout,
		Retries:          *retries,
		BreakerThreshold: *brThreshold,
		BreakerCooldown:  *brCooldown,
		CacheDir:         *cacheDir,
		CacheMaxBytes:    *cacheMax,
		StoreCapacity:    *storeCap,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "batfishd: %v\n", err)
		os.Exit(1)
	}

	// Publish the service counters through expvar alongside the
	// runtime's; registration lives here (not in the package) so tests
	// can build many Servers without tripping expvar's duplicate check.
	expvar.Publish("batfishd", expvar.Func(func() any { return srv.Metrics() }))

	// Cluster mode: wrap the server in a node that routes per-snapshot
	// requests by ownership. The advertised URL is what other members
	// dial, so it must be reachable from them (not ":8866").
	var node *cluster.Node
	if *clusterListen != "" {
		id := *memberID
		if id == "" {
			host, _ := os.Hostname()
			if host == "" {
				host = "member"
			}
			id = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		node, err = cluster.NewNode(cluster.Config{
			ID:                 id,
			Server:             srv,
			Heartbeat:          *heartbeat,
			DisableFailover:    !*failover,
			DisableReplication: !*replicate,
			Logf:               func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "batfishd: %v\n", err)
			os.Exit(1)
		}
		if err := node.Start(context.Background(), *clusterListen, *clusterJoin); err != nil {
			fmt.Fprintf(os.Stderr, "batfishd: cluster join: %v\n", err)
			os.Exit(1)
		}
		role := "member of " + *clusterJoin
		if *clusterJoin == "" {
			role = "coordinator"
		}
		fmt.Fprintf(os.Stderr, "batfishd: cluster %s at %s (%s)\n", id, *clusterListen, role)
	} else if *clusterJoin != "" {
		fmt.Fprintln(os.Stderr, "batfishd: -cluster-join requires -cluster-listen")
		os.Exit(2)
	}

	mux := http.NewServeMux()
	if node != nil {
		mux.Handle("/", node.Handler())
	} else {
		mux.Handle("/", srv.Handler())
	}
	mux.Handle("GET /debug/vars", expvar.Handler())
	if *pprofOn {
		// Off by default: the profiling endpoints disclose internals and
		// cost CPU when scraped, so they are opt-in per instance.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		fmt.Fprintln(os.Stderr, "batfishd: pprof enabled at /debug/pprof/")
	}

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "batfishd: listening on %s\n", *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "batfishd: %v\n", err)
		os.Exit(1)
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "batfishd: %v: draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	// In cluster mode the node drains: it leaves the view (handing its
	// snapshots to the survivors), stops heartbeating, then drains the
	// wrapped server. Standalone, the server drains directly.
	drain := srv.Drain
	if node != nil {
		drain = node.Drain
	}
	if err := drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "batfishd: %v\n", err)
		code = 1
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "batfishd: shutdown: %v\n", err)
		code = 1
	}
	fmt.Fprintln(os.Stderr, "batfishd: drained")
	os.Exit(code)
}
