// Command batfish analyzes network configuration snapshots from the
// command line: load a directory of configuration files, run questions,
// trace flows, and regenerate the paper's evaluation tables.
//
// Usage:
//
//	batfish -snapshot DIR [-q QUESTION] [flags]
//	batfish -table1            # regenerate Table 1 (network inventory)
//	batfish -table2 [-nets N]  # regenerate Table 2 (performance)
//	batfish -demo figure1      # reproduce Figure 1's convergence behavior
//
// Questions: refs, unused, dupips, ntp, bgp, routes (-node), reachability,
// multipath, loops, traceroute (-node -iface -src -dst -dport).
//
// -cachestats prints the staged pipeline's artifact-cache counters and
// per-stage wall times (cold vs warm) after the run.
//
// Failure containment flags:
//
//	-timeout D   bound the whole run by a context deadline; on expiry the
//	             pipeline stops at its next checkpoint and partial results
//	             are reported (exit code 3)
//	-faults SPEC deterministic fault injection for chaos testing, e.g.
//	             "parse:leaf1=panic,dataplane:*=sleep:50ms" (see
//	             internal/faults)
//
// Exit codes: 0 success, 1 error, 2 usage, 3 cancelled/deadline exceeded,
// 4 degraded (quarantined devices, budget trips, or recovered panics —
// results are partial but usable). Degraded runs print a diagnostics
// summary on stderr.
//
// Failure sweep (-sweep): enumerate all k-failure scenarios (links, nodes,
// BGP sessions per -fail), prune provably-equivalent ones via blast-radius
// equivalence classes, and run the survivors across a worker pool:
//
//	batfish -snapshot DIR -sweep [-k 1|2] [-fail links,nodes,sessions]
//	        [-sweep-dst CIDR[,CIDR]] [-sweep-src DEV[/IFACE],...]
//	        [-sweep-workers N]
//
// In -sweep mode the exit code is the number of scenarios that regress a
// monitored flow (capped at 100) so scripts can gate on "any violating
// failure"; flag errors still exit 2 before the sweep starts, 101 is
// cancelled, 102 degraded without a countable violation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/batfish"
	"repro/internal/bdd"
	"repro/internal/config"
	"repro/internal/dataplane"
	"repro/internal/faults"
	"repro/internal/fwdgraph"
	"repro/internal/hdr"
	"repro/internal/ip4"
	"repro/internal/netgen"
	"repro/internal/pipeline"
	"repro/internal/reach"
	"repro/internal/sweep"
	"repro/internal/testnet"
)

// Exit codes distinguishing the degradation states.
const (
	exitOK        = 0
	exitError     = 1
	exitUsage     = 2
	exitCancelled = 3
	exitDegraded  = 4
)

func main() {
	var (
		snapshot  = flag.String("snapshot", "", "directory of configuration files")
		question  = flag.String("q", "refs", "question to ask")
		node      = flag.String("node", "", "device for node-scoped questions")
		iface     = flag.String("iface", "", "interface for traceroute")
		srcIP     = flag.String("src", "", "source IP for traceroute")
		dstIP     = flag.String("dst", "", "destination IP for traceroute")
		dport     = flag.Int("dport", 80, "destination port for traceroute")
		table1    = flag.Bool("table1", false, "print the Table 1 network inventory")
		table2    = flag.Bool("table2", false, "run the Table 2 performance benchmark")
		nets      = flag.Int("nets", 5, "how many catalog networks -table2 runs")
		demo      = flag.String("demo", "", "run a paper demo: figure1, badgadget")
		cacheSt   = flag.Bool("cachestats", false, "print pipeline cache statistics after the run")
		timeout   = flag.Duration("timeout", 0, "deadline for the whole run (0 = none); expiry yields partial results and exit code 3")
		faultSpec = flag.String("faults", "", "fault-injection spec, e.g. \"parse:leaf1=panic,dataplane:*=sleep:50ms\"")
		sweepRun  = flag.Bool("sweep", false, "run a failure-scenario sweep over the snapshot")
		sweepK    = flag.Int("k", 1, "simultaneous failures per sweep scenario (1 or 2)")
		sweepFail = flag.String("fail", "links,nodes", "failure kinds to sweep: comma list of links,nodes,sessions")
		sweepWrk  = flag.Int("sweep-workers", 0, "sweep worker count (0 = GOMAXPROCS)")
		sweepDst  = flag.String("sweep-dst", "", "monitored destination prefixes, comma-separated CIDRs (default: all)")
		sweepSrc  = flag.String("sweep-src", "", "monitored sources as DEV or DEV/IFACE, comma-separated (default: host-facing)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batfish: -cpuprofile: %v\n", err)
			os.Exit(exitUsage)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "batfish: -cpuprofile: %v\n", err)
			os.Exit(exitError)
		}
	}
	// main exits via os.Exit (skipping defers), so profiles are flushed
	// here explicitly before every exit path below.
	stopProfiles := func() {
		if *cpuProf != "" {
			pprof.StopCPUProfile()
		}
		if *memProf != "" {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "batfish: -memprofile: %v\n", err)
				return
			}
			runtime.GC() // materialize final live-heap state
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "batfish: -memprofile: %v\n", err)
			}
			f.Close()
		}
	}

	if *faultSpec != "" {
		inj, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batfish: bad -faults: %v\n", err)
			os.Exit(exitUsage)
		}
		restore := faults.Activate(inj)
		defer restore()
		fmt.Fprintf(os.Stderr, "fault injection active: %s\n", inj.Describe())
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	code := exitOK
	switch {
	case *table1:
		printTable1()
	case *table2:
		runTable2(*nets)
	case *demo == "figure1":
		demoFigure1()
	case *demo == "badgadget":
		demoBadGadget()
	case *snapshot != "" && *sweepRun:
		code = runSweep(ctx, *snapshot, *sweepK, *sweepFail, *sweepWrk, *sweepDst, *sweepSrc)
	case *snapshot != "":
		code = runQuestion(ctx, *snapshot, *question, *node, *iface, *srcIP, *dstIP, *dport)
	default:
		flag.Usage()
		os.Exit(exitUsage)
	}
	if *cacheSt {
		printCacheStats()
	}
	stopProfiles()
	os.Exit(code)
}

// printCacheStats reports the shared pipeline's artifact store counters
// and the per-stage wall-time split (cold = computed, warm = cache hit).
func printCacheStats() {
	st := batfish.CacheStats()
	fmt.Fprintf(os.Stderr, "pipeline cache: %d/%d entries, %d hits, %d misses, %d evictions\n",
		st.Store.Entries, st.Store.Capacity, st.Store.Hits, st.Store.Misses, st.Store.Evictions)
	stage := func(name string, t pipeline.StageTimes) {
		fmt.Fprintf(os.Stderr, "  %-9s cold %3d run(s) %12v   warm %3d run(s) %12v\n",
			name, t.ColdRuns, time.Duration(t.ColdNs).Round(time.Microsecond),
			t.WarmRuns, time.Duration(t.WarmNs).Round(time.Microsecond))
	}
	stage("parse", st.Parse)
	stage("dataplane", st.DataPlane)
	stage("graph", st.Graph)
	stage("analysis", st.Analysis)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "batfish: "+format+"\n", args...)
	os.Exit(exitError)
}

// containmentExit prints the diagnostics summary for a degraded snapshot
// and picks the exit code: 3 when the run was cancelled, 4 when results
// are otherwise partial (quarantine, budget, recovered panic), 0 clean.
func containmentExit(snap *batfish.Snapshot) int {
	ds := snap.Diags()
	if len(ds) == 0 {
		return exitOK
	}
	fmt.Fprintln(os.Stderr, "containment: "+batfish.DiagSummary(ds))
	if qn := snap.Quarantined(); len(qn) > 0 {
		fmt.Fprintf(os.Stderr, "quarantined devices: %s\n", strings.Join(qn, ", "))
	}
	if snap.Cancelled() {
		return exitCancelled
	}
	return exitDegraded
}

func runQuestion(ctx context.Context, dir, q, node, iface, src, dst string, dport int) int {
	snap, err := batfish.LoadDirContext(ctx, dir)
	if err != nil {
		fatalf("%v", err)
	}
	for _, w := range snap.Warnings {
		fmt.Fprintf(os.Stderr, "warning: %v\n", w)
	}
	printFindings := func(fs []batfish.Finding) {
		if len(fs) == 0 {
			fmt.Println("no findings")
		}
		for _, f := range fs {
			fmt.Println(f)
		}
	}
	switch q {
	case "refs":
		printFindings(snap.UndefinedReferences())
	case "unused":
		printFindings(snap.UnusedStructures())
	case "dupips":
		printFindings(snap.DuplicateIPs())
	case "ntp":
		printFindings(snap.NTPConsistency())
	case "bgp":
		printFindings(snap.BGPSessionStatus())
	case "routes":
		if node == "" {
			fatalf("-node required for routes")
		}
		for _, rt := range snap.Routes(node) {
			fmt.Println(rt)
		}
	case "reachability":
		for _, r := range snap.Reachability(batfish.ReachabilityParams{}) {
			fmt.Printf("%s/%s:\n", r.Source.Device, r.Source.Iface)
			if r.HasPositive {
				fmt.Printf("  delivered example: %v\n", r.PositiveExample)
			}
			if r.HasNegative {
				fmt.Printf("  failed example:    %v\n", r.NegativeExample)
				for _, t := range r.Traces {
					fmt.Println("  " + strings.ReplaceAll(t.String(), "\n", "\n  "))
				}
			}
		}
	case "loops":
		loops := snap.DetectLoops()
		if len(loops) == 0 {
			fmt.Println("no forwarding loops")
		}
		for _, l := range loops {
			fmt.Printf("loop from %s/%s, example %v\n", l.Source.Device, l.Source.Iface, l.Example)
		}
	case "multipath":
		vs := snap.MultipathConsistency()
		if len(vs) == 0 {
			fmt.Println("multipath consistent")
		}
		for _, v := range vs {
			fmt.Printf("violation at %s/%s, example %v\n", v.Source.Device, v.Source.Iface, v.Example)
		}
	case "traceroute":
		if node == "" || dst == "" {
			fatalf("-node and -dst required for traceroute")
		}
		p := hdr.Packet{Protocol: hdr.ProtoTCP, DstPort: uint16(dport), SrcPort: 40000}
		var err error
		if p.DstIP, err = ip4.ParseAddr(dst); err != nil {
			fatalf("bad -dst: %v", err)
		}
		if src != "" {
			if p.SrcIP, err = ip4.ParseAddr(src); err != nil {
				fatalf("bad -src: %v", err)
			}
		}
		for _, t := range snap.Traceroute().Run(node, config.DefaultVRF, iface, p) {
			fmt.Println(t)
		}
	default:
		fatalf("unknown question %q", q)
	}
	return containmentExit(snap)
}

// Sweep-mode exit codes: the count of violating scenarios doubles as the
// exit code so shell gates can test "any violating failure" directly. The
// count is capped below the sentinel codes for cancellation/degradation.
const (
	sweepExitMaxViolations = 100
	sweepExitCancelled     = 101
	sweepExitDegraded      = 102
)

// parseSweepSpec translates the -sweep flag family into a sweep.Spec.
func parseSweepSpec(k int, fail string, workers int, dsts, srcs string) (sweep.Spec, error) {
	spec := sweep.Spec{K: k, Workers: workers}
	for _, kind := range strings.Split(fail, ",") {
		switch strings.TrimSpace(kind) {
		case "links":
			spec.Links = true
		case "nodes":
			spec.Nodes = true
		case "sessions":
			spec.Sessions = true
		case "":
		default:
			return spec, fmt.Errorf("unknown -fail kind %q (want links, nodes, or sessions)", kind)
		}
	}
	if dsts != "" {
		for _, c := range strings.Split(dsts, ",") {
			p, err := ip4.ParsePrefix(strings.TrimSpace(c))
			if err != nil {
				return spec, fmt.Errorf("bad -sweep-dst %q: %v", c, err)
			}
			spec.DstIPs = append(spec.DstIPs, p)
		}
	}
	if srcs != "" {
		for _, s := range strings.Split(srcs, ",") {
			dev, ifc, _ := strings.Cut(strings.TrimSpace(s), "/")
			if dev == "" {
				return spec, fmt.Errorf("bad -sweep-src entry %q", s)
			}
			spec.Sources = append(spec.Sources, reach.SourceLoc{Device: dev, Iface: ifc})
		}
	}
	return spec, nil
}

// runSweep enumerates, prunes, and executes the failure sweep, streaming
// violating scenarios as their classes complete and printing a summary.
func runSweep(ctx context.Context, dir string, k int, fail string, workers int, dsts, srcs string) int {
	spec, err := parseSweepSpec(k, fail, workers, dsts, srcs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "batfish: %v\n", err)
		return exitUsage
	}
	snap, err := batfish.LoadDirContext(ctx, dir)
	if err != nil {
		fatalf("%v", err)
	}
	for _, w := range snap.Warnings {
		fmt.Fprintf(os.Stderr, "warning: %v\n", w)
	}

	t0 := time.Now()
	plan, err := sweep.NewPlan(snap, spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "batfish: sweep: %v\n", err)
		return exitUsage
	}
	fmt.Printf("sweep: %d scenarios in %d equivalence classes\n",
		plan.Enumerated(), plan.Classes())

	res, execErr := plan.Execute(ctx, func(v sweep.Verdict) {
		if v.Violations == 0 && !v.Degraded {
			return
		}
		status := fmt.Sprintf("%d violation(s)", v.Violations)
		if v.Degraded {
			status += " [degraded]"
		}
		mark := "pruned, stamped from class " + v.Class
		if v.Executed {
			mark = "executed"
		}
		fmt.Printf("  %-40s %s (%s)\n", v.Scenario, status, mark)
	})
	if res != nil {
		fmt.Printf("sweep: enumerated=%d classes=%d executed=%d pruned=%d violations=%d wall=%v\n",
			res.Enumerated, res.Classes, res.Executed, res.Pruned, res.Violations,
			time.Since(t0).Round(time.Millisecond))
	}
	switch {
	case execErr != nil:
		fmt.Fprintf(os.Stderr, "batfish: sweep cancelled: %v\n", execErr)
		return sweepExitCancelled
	case res.Violations > 0:
		return min(res.Violations, sweepExitMaxViolations)
	case res.Degraded:
		return sweepExitDegraded
	default:
		return exitOK
	}
}

func printTable1() {
	fmt.Printf("%-7s %-12s %8s %9s %10s %8s  %s\n",
		"Network", "Type", "Devices", "LoC", "Routes", "Dialects", "Protocols")
	for _, sp := range netgen.Catalog() {
		snap := sp.Gen()
		net, _ := snap.Parse()
		dialects := map[netgen.Dialect]bool{}
		for _, d := range snap.Devices {
			dialects[d.Dialect] = true
		}
		ds := []string{}
		if dialects[netgen.IOS] {
			ds = append(ds, "ios")
		}
		if dialects[netgen.Junos] {
			ds = append(ds, "junos")
		}
		protos := protoSummary(net)
		// Route counts require the data plane; keep Table 1 cheap by
		// reporting them only for the smaller networks.
		routes := "-"
		if sp.ExpectDevices <= 300 {
			dp := dataplane.Run(net, dataplane.Options{Parallelism: runtime.NumCPU()})
			routes = fmt.Sprint(totalRoutes(dp))
		}
		fmt.Printf("%-7s %-12s %8d %9d %10s %8s  %s\n",
			sp.Name, sp.Type, len(snap.Devices), snap.LoC(), routes,
			strings.Join(ds, "+"), protos)
	}
}

func protoSummary(net *config.Network) string {
	has := map[string]bool{}
	for _, d := range net.Devices {
		for _, v := range d.VRFs {
			if v.OSPF != nil {
				has["ospf"] = true
			}
			if v.BGP != nil {
				has["bgp"] = true
			}
			if len(v.StaticRoutes) > 0 {
				has["static"] = true
			}
		}
		if len(d.ACLs) > 0 {
			has["acl"] = true
		}
	}
	var out []string
	for _, p := range []string{"bgp", "ospf", "static", "acl"} {
		if has[p] {
			out = append(out, p)
		}
	}
	return strings.Join(out, ",")
}

func totalRoutes(dp *dataplane.Result) int {
	n := 0
	for _, ns := range dp.Nodes {
		for _, vs := range ns.VRFs {
			n += vs.Main.Size()
		}
	}
	return n
}

func runTable2(nets int) {
	specs := netgen.Catalog()
	if nets < len(specs) {
		specs = specs[:nets]
	}
	fmt.Printf("%-7s %8s %10s %12s %12s %12s\n",
		"Network", "Devices", "Routes", "Parse", "DP gen", "Dest reach")
	for _, sp := range specs {
		snap := sp.Gen()

		t0 := time.Now()
		net, _ := snap.Parse()
		parse := time.Since(t0)

		t1 := time.Now()
		dp := dataplane.Run(net, dataplane.Options{Parallelism: runtime.NumCPU()})
		dpGen := time.Since(t1)
		if !dp.Converged {
			fmt.Fprintf(os.Stderr, "%s: did not converge: %v\n", sp.Name, dp.Warnings)
		}

		t2 := time.Now()
		an := reachFor(dp)
		dst := net.DeviceNames()[len(net.DeviceNames())/2]
		res := an.DestReachability(dst, bdd.True)
		reachDur := time.Since(t2)
		_ = res

		fmt.Printf("%-7s %8d %10d %12v %12v %12v\n",
			sp.Name, len(net.Devices), totalRoutes(dp), parse.Round(time.Millisecond),
			dpGen.Round(time.Millisecond), reachDur.Round(time.Millisecond))
	}
}

func reachFor(dp *dataplane.Result) *reach.Analysis {
	return reach.New(fwdgraph.New(dp))
}

func demoBadGadget() {
	fmt.Println("BGP bad gadget: 3-router ring, each preferring its successor's path")
	fmt.Println("(no stable solution exists; the simulator must report this, §4.1.2)")
	fmt.Println()
	r := dataplane.Run(testnet.BadGadget(), dataplane.Options{MaxIterations: 200})
	fmt.Printf("converged=%v oscillation=%v iterations=%d sessions=%d\n",
		r.Converged, r.Oscillation, r.BGPIterations, len(r.Sessions))
	for _, w := range r.Warnings {
		fmt.Println("  " + w)
	}
}

func demoFigure1() {
	fmt.Println("Figure 1b: two border routers + two external advertisers of 10.0.0.0/8")
	fmt.Println()
	lock := dataplane.Run(testnet.Figure1b(), dataplane.Options{
		Schedule: dataplane.ScheduleLockstep, MaxIterations: 50})
	fmt.Printf("lockstep schedule:  converged=%v oscillation=%v iterations=%d\n",
		lock.Converged, lock.Oscillation, lock.BGPIterations)
	for _, w := range lock.Warnings {
		fmt.Println("  " + w)
	}
	col := dataplane.Run(testnet.Figure1b(), dataplane.Options{})
	fmt.Printf("colored schedule:   converged=%v oscillation=%v iterations=%d\n",
		col.Converged, col.Oscillation, col.BGPIterations)
	for _, name := range []string{"border1", "border2"} {
		for _, rt := range col.Nodes[name].DefaultVRF().Main.AllBest() {
			if rt.Prefix == ip4.MustParsePrefix("10.0.0.0/8") {
				fmt.Printf("  %s: %v\n", name, rt)
			}
		}
	}
}
