// ACL refactoring: the design-validation workflow of paper §5.3 — compress
// a grown ACL by removing unreachable entries, then prove the refactored
// version equivalent before deployment ("compressing large ACLs by
// removing redundant, no-longer-relevant, or unreachable entries").
package main

import (
	"fmt"

	"repro/internal/acl"
	"repro/internal/hdr"
	"repro/internal/ip4"
)

func line(action acl.Action, name string, proto int, src, dst string, dport uint16) acl.Line {
	l := acl.NewLine(action, name)
	l.Protocol = proto
	if src != "" {
		l.SrcIPs = []ip4.Prefix{ip4.MustParsePrefix(src)}
	}
	if dst != "" {
		l.DstIPs = []ip4.Prefix{ip4.MustParsePrefix(dst)}
	}
	if dport != 0 {
		l.DstPorts = []acl.PortRange{{Lo: dport, Hi: dport}}
	}
	return l
}

func main() {
	enc := hdr.NewEnc(0)

	// An ACL that has grown over the years: later entries are shadowed.
	grown := &acl.ACL{Name: "EDGE_V1", Lines: []acl.Line{
		line(acl.Deny, "deny telnet", hdr.ProtoTCP, "", "", 23),
		line(acl.Permit, "permit web", hdr.ProtoTCP, "", "10.1.0.0/16", 80),
		line(acl.Permit, "old web rule", hdr.ProtoTCP, "", "10.1.2.0/24", 80), // shadowed
		line(acl.Deny, "block legacy", hdr.ProtoTCP, "192.168.9.0/24", "", 0),
		line(acl.Deny, "dup telnet", hdr.ProtoTCP, "", "", 23), // shadowed
		line(acl.Permit, "permit ssh", hdr.ProtoTCP, "", "10.1.0.0/16", 22),
		line(acl.Permit, "rest", -1, "", "", 0),
	}}

	fmt.Println("unreachable entries in", grown.Name+":")
	dead := acl.UnreachableLines(enc, grown)
	for _, i := range dead {
		fmt.Printf("  line %d: %s\n", i+1, grown.Lines[i].Name)
	}

	// Refactor: drop the unreachable lines.
	refactored := &acl.ACL{Name: "EDGE_V2"}
	deadSet := map[int]bool{}
	for _, i := range dead {
		deadSet[i] = true
	}
	for i := range grown.Lines {
		if !deadSet[i] {
			refactored.Lines = append(refactored.Lines, grown.Lines[i])
		}
	}
	fmt.Printf("refactored: %d -> %d lines\n", len(grown.Lines), len(refactored.Lines))

	// Prove equivalence before shipping.
	if eq, _ := acl.Equivalent(enc, grown, refactored); eq {
		fmt.Println("EDGE_V1 and EDGE_V2 are provably equivalent")
	} else {
		fmt.Println("refactoring changed behavior!")
	}

	// A refactor that silently breaks something: deleting the telnet deny.
	broken := &acl.ACL{Name: "EDGE_V3", Lines: refactored.Lines[1:]}
	eq, witness := acl.Equivalent(enc, refactored, broken)
	fmt.Printf("EDGE_V2 vs EDGE_V3 equivalent: %v\n", eq)
	if !eq {
		fmt.Println("  witness packet:", witness,
			"\n  v2:", refactored.Eval(witness).Action, "/ v3:", broken.Eval(witness).Action)
	}
}
