// Quickstart: parse a small two-router network from configuration text,
// run the configuration-sanity questions (Lesson 5), compute the data
// plane, and ask a reachability question with automatic scoping and
// example selection (paper §4.4).
package main

import (
	"fmt"

	"repro/batfish"
)

const r1 = `
hostname r1
!
interface eth0
 ip address 10.0.0.1 255.255.255.252
 ip ospf area 0
!
interface lan0
 ip address 192.168.1.1 255.255.255.0
 ip ospf area 0
 ip ospf passive
 ip access-group USERS in
!
ip access-list extended USERS
 deny tcp any any eq 23
 permit ip any any
!
router ospf 1
 router-id 1.1.1.1
!
ntp server 192.0.2.10
`

const r2 = `
set system host-name r2
set interfaces ge-0/0/0 unit 0 family inet address 10.0.0.2/30
set protocols ospf area 0 interface ge-0/0/0
set interfaces lan0 unit 0 family inet address 192.168.2.1/24
set protocols ospf area 0 interface lan0 passive
set interfaces lan0 unit 0 family inet filter output PROTECT
set firewall filter PROTECT term web from protocol tcp
set firewall filter PROTECT term web from destination-port 80
set firewall filter PROTECT term web then accept
set firewall filter PROTECT term ssh from protocol tcp
set firewall filter PROTECT term ssh from destination-port 22
set firewall filter PROTECT term ssh then accept
set firewall filter PROTECT term drop then discard
`

func main() {
	// Stage 1: parse (dialects auto-detected: r1 is IOS-style, r2 Junos).
	snap := batfish.LoadText(map[string]string{"r1.cfg": r1, "r2.cfg": r2})
	for _, w := range snap.Warnings {
		fmt.Println("parse warning:", w)
	}

	// Configuration questions work without computing the data plane.
	fmt.Println("== undefined references")
	for _, f := range snap.UndefinedReferences() {
		fmt.Println("  ", f)
	}
	fmt.Println("== ntp consistency")
	for _, f := range snap.NTPConsistency() {
		fmt.Println("  ", f)
	}

	// Stage 2: the data plane (imperative simulation, §4.1).
	dp := snap.DataPlane()
	fmt.Printf("== data plane: converged=%v igp-iterations=%d\n", dp.Converged, dp.IGPIterations)
	fmt.Println("== routes at r1")
	for _, rt := range snap.Routes("r1") {
		fmt.Println("  ", rt)
	}

	// Stage 3+4: reachability with default scoping and contrasted
	// examples (§4.4.2, §4.4.3).
	fmt.Println("== reachability from host-facing interfaces")
	for _, r := range snap.Reachability(batfish.ReachabilityParams{}) {
		fmt.Printf("  %s/%s:\n", r.Source.Device, r.Source.Iface)
		if r.HasPositive {
			fmt.Println("    delivered example:", r.PositiveExample)
		}
		if r.HasNegative {
			fmt.Println("    failed example:   ", r.NegativeExample)
		}
	}
}
