// Figure 2: rebuild the paper's dataflow-analysis example — three routers
// where R1's interface i3 carries an outbound ACL that allows only ssh —
// and show how the BDD engine classifies traffic entering at R1.i0
// (paper §4.2.1).
package main

import (
	"fmt"
	"sort"

	"repro/internal/bdd"
	"repro/internal/dataplane"
	"repro/internal/fwdgraph"
	"repro/internal/hdr"
	"repro/internal/ip4"
	"repro/internal/reach"
	"repro/internal/testnet"
)

func main() {
	net := testnet.Figure2()
	dp := dataplane.Run(net, dataplane.Options{})
	fmt.Printf("data plane: converged=%v\n", dp.Converged)

	g := fwdgraph.New(dp)
	fmt.Println(g) // node/edge counts
	// Show the graph structure around R1, mirroring Figure 2b.
	names := make([]string, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Node_ == "r1" {
			names = append(names, n.Name)
		}
	}
	sort.Strings(names)
	fmt.Println("R1's dataflow nodes:")
	for _, n := range names {
		fmt.Println("  ", n)
	}

	a := reach.New(g)
	enc := a.Enc
	// All TCP packets entering the network at R1.i0 (the paper's query).
	res, _ := a.Reachability(reach.SourceLoc{Device: "r1", Iface: "i0"},
		enc.FieldEq(hdr.Protocol, hdr.ProtoTCP))

	toP3 := enc.Prefix(hdr.DstIP, ip4.MustParsePrefix("10.0.3.0/24"))
	delivered := enc.F.And(res.Sinks[fwdgraph.SinkDeliveredToHost], toP3)
	denied := enc.F.And(res.Sinks[fwdgraph.SinkDeniedOut], toP3)

	fmt.Printf("\nTCP traffic from R1.i0 to P3 (10.0.3.0/24):\n")
	fmt.Printf("  delivered set is ssh-only: %v\n",
		enc.F.Implies(delivered, enc.FieldEq(hdr.DstPort, 22)))
	if p, ok := enc.PickPacket(delivered); ok {
		fmt.Println("  delivered example:", p)
	}
	if p, ok := enc.PickPacket(denied, enc.FieldEq(hdr.DstPort, 80)); ok {
		fmt.Println("  denied example:   ", p)
	}
	_ = bdd.True
}
