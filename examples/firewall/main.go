// Stateful firewall: bidirectional reachability through a zone-based
// firewall (paper §4.2.3). The forward pass installs sessions; the return
// pass rides the session fast path even though no policy permits
// outside->inside traffic. Both the symbolic (BDD) and concrete
// (traceroute) engines answer, and must agree.
package main

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/config"
	"repro/internal/dataplane"
	"repro/internal/fwdgraph"
	"repro/internal/hdr"
	"repro/internal/ip4"
	"repro/internal/reach"
	"repro/internal/testnet"
	"repro/internal/traceroute"
)

func main() {
	net := testnet.Firewall() // client -- fw (zones, stateful) -- server
	dp := dataplane.Run(net, dataplane.Options{})
	fmt.Printf("data plane converged: %v\n\n", dp.Converged)

	// Symbolic: what can make the round trip client -> server -> client?
	a := reach.New(fwdgraph.New(dp))
	enc := a.Enc
	hs := enc.F.AndN(
		enc.Prefix(hdr.SrcIP, ip4.MustParsePrefix("10.1.0.0/24")),
		enc.Prefix(hdr.DstIP, ip4.MustParsePrefix("10.2.0.0/24")),
		enc.FieldEq(hdr.Protocol, hdr.ProtoTCP),
	)
	res, _ := a.Bidirectional(reach.SourceLoc{Device: "client", Iface: "eth0"}, "server", hs)
	fmt.Println("symbolic engine:")
	fmt.Printf("  forward delivery is HTTP-only: %v\n",
		enc.F.Implies(res.Forward, enc.FieldEq(hdr.DstPort, 80)))
	fmt.Printf("  round trip possible:           %v\n", res.RoundTrip != bdd.False)
	if p, ok := enc.PickPacket(res.RoundTrip, enc.FieldGE(hdr.SrcPort, 1024)); ok {
		fmt.Println("  round-trip example:           ", p)
	}

	// Concrete: trace the same flow and its reply.
	tr := traceroute.New(dp)
	syn := hdr.Packet{
		SrcIP: ip4.MustParseAddr("10.1.0.50"), DstIP: ip4.MustParseAddr("10.2.0.2"),
		Protocol: hdr.ProtoTCP, SrcPort: 42000, DstPort: 80, TCPFlags: hdr.FlagSYN,
	}
	fwd, rev := tr.Bidirectional("client", config.DefaultVRF, "eth0", syn)
	fmt.Println("\nconcrete engine (forward):")
	for _, t := range fwd {
		fmt.Println(t)
	}
	fmt.Println("\nconcrete engine (return, via session fast path):")
	for _, t := range rev {
		fmt.Println(t)
	}

	// And the unsolicited direction is blocked.
	tr.ClearSessions()
	attack := hdr.Packet{
		SrcIP: ip4.MustParseAddr("10.2.0.2"), DstIP: ip4.MustParseAddr("10.1.0.50"),
		Protocol: hdr.ProtoTCP, SrcPort: 999, DstPort: 80, TCPFlags: hdr.FlagSYN,
	}
	fmt.Println("\nunsolicited outside->inside SYN:")
	for _, t := range tr.Run("server", config.DefaultVRF, "eth0", attack) {
		fmt.Println(t)
	}
}
