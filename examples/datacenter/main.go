// Data center CI: the proactive-validation workflow of paper §5.1 on an
// eBGP Clos fabric — generate configs, verify the candidate snapshot
// (sessions up, multipath-consistent, end-to-end reachability), then diff
// a bad change against the baseline to catch the flows it breaks before
// deployment.
package main

import (
	"fmt"
	"strings"

	"repro/batfish"
	"repro/internal/bdd"
	"repro/internal/netgen"
)

func main() {
	params := netgen.FabricParams{
		Name: "dc", Spines: 2, Pods: 2, AggPerPod: 2, TorPerPod: 3,
		HostNetsPerTor: 1, Multipath: true, EdgeACLs: true,
	}
	gen := netgen.Fabric(params)
	fmt.Printf("generated %d devices, %d LoC of configuration\n", len(gen.Devices), gen.LoC())

	snap := batfish.LoadGenerated(gen)
	if len(snap.Warnings) > 0 {
		fmt.Println("parse warnings:", snap.Warnings)
	}

	// Gate 1: all BGP sessions must establish.
	down := 0
	for _, f := range snap.BGPSessionStatus() {
		if !strings.Contains(f.Detail, "established") {
			fmt.Println("  DOWN:", f)
			down++
		}
	}
	fmt.Printf("gate 1: BGP sessions down: %d\n", down)

	// Gate 2: multipath consistency (the paper's benchmark query, §6.1).
	viol := snap.MultipathConsistency()
	fmt.Printf("gate 2: multipath violations: %d\n", len(viol))

	// Gate 3: every host-facing port can be delivered to from elsewhere.
	results := snap.Reachability(batfish.ReachabilityParams{})
	noDeliver := 0
	for _, r := range results {
		if !r.HasPositive {
			noDeliver++
		}
	}
	fmt.Printf("gate 3: host-facing sources with no delivery: %d of %d\n", noDeliver, len(results))

	// Candidate change: an operator "tightens" the ToR ACL and
	// accidentally drops established-traffic return flows.
	bad := netgen.Fabric(params)
	for i := range bad.Devices {
		bad.Devices[i].Text = strings.Replace(bad.Devices[i].Text,
			" permit tcp any gt 1023 any established\n", "", 1)
	}
	after := batfish.LoadGenerated(bad)
	diffs := snap.CompareWith(after)
	fmt.Printf("\nproposed change review: %d source(s) with reachability diffs\n", len(diffs))
	shown := 0
	for _, d := range diffs {
		if d.Broken != bdd.False && d.HasBroken && shown < 3 {
			fmt.Printf("  %s/%s breaks e.g. %v\n", d.Source.Device, d.Source.Iface, d.BrokenEx)
			shown++
		}
	}
	if len(diffs) > 0 {
		fmt.Println("verdict: change REJECTED by CI")
	} else {
		fmt.Println("verdict: change approved")
	}
}
