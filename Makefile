# Build/test gates for the repro module. `make check` is the PR gate:
# vet + full tests + race. The race target runs with -short so the
# 200-device determinism test shrinks to an affordable size under the
# race detector; TestParallelismMatchesSerial and the parallel engine
# paths still run with the worker pool enabled, which is the point.

GO ?= go

.PHONY: build vet test race check bench benchjson

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...
	$(GO) test -race -run 'TestParallelismMatchesSerial|TestPoolConcurrentInterning' ./internal/dataplane/ ./internal/routing/

check: vet test race

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Emit a dated perf snapshot (BENCH_<date>.json) from the benchmarks.
benchjson:
	$(GO) test -bench . -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson
