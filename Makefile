# Build/test gates for the repro module. `make check` is the PR gate:
# vet + full tests + race. The race target runs with -short so the
# 200-device determinism test shrinks to an affordable size under the
# race detector; TestParallelismMatchesSerial and the parallel engine
# paths still run with the worker pool enabled, which is the point.
#
# gblint run cache (`make lint-fast`, used by `make check`): entries
# live in .gblint-cache/ (gitignored). The key hashes the content of
# every non-test .go file in the linted packages and their
# module-internal import closure, plus the -checks list and the cache
# format version — so any source edit, added/removed file, or check
# change invalidates it. Invalidation is whole-module, not
# per-package, because gblint's interprocedural checks cross package
# boundaries: a callee edit changes the caller's lock-io-deep
# findings, and the global lock-order graph can anchor a new cycle's
# finding in an unchanged package. Stale entries are dead files;
# `rm -rf .gblint-cache` is always safe and merely costs one rerun.

GO ?= go

.PHONY: build vet vet-extra lint lint-fast test race soak cluster-chaos check bench benchjson bench-smoke bench-check cover fuzz-smoke

# Coverage floor for the caching/incremental layer. The pipeline and core
# packages carry the correctness-critical cache keying and blast-radius
# logic, so regressions in their test coverage fail the build.
COVER_PKGS = ./internal/pipeline/ ./internal/core/
COVER_MIN  = 70.0

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Opt-in vet analyzers beyond the default set: copied-lock values,
# pre-1.22 loop-variable capture, and discarded error-returning calls.
vet-extra:
	$(GO) vet -copylocks -loopclosure -unusedresult ./...

# gblint: the repo-invariant analyzer suite (DESIGN.md §7). Exits
# nonzero on any finding; suppressions require a written reason.
lint:
	$(GO) run ./cmd/gblint ./...

# Memoized gblint (see header comment for cache location/invalidation).
lint-fast:
	$(GO) run ./cmd/gblint -cache .gblint-cache ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...
	$(GO) test -race -run 'TestParallelismMatchesSerial|TestPoolConcurrentInterning' ./internal/dataplane/ ./internal/routing/
	$(GO) test -race -run 'TestParallelParseDeterminism|TestIncrementalEquivalence' ./internal/pipeline/ ./internal/core/
	$(GO) test -race -run 'TestChaos|TestCancel' ./internal/faults/
	$(GO) test -race -run 'TestSweepDeterminismAcrossWorkers|TestSweepWorkerKillRequeue' ./internal/sweep/

# Race-gated server soak: mixed concurrent workload against batfishd's
# engine with a persistent cache, then a warm restart over the same
# directory (skipped by -short, so `race` does not run it twice).
soak:
	$(GO) test -race -run TestSoak -count=1 ./internal/server/

# Race-gated cluster chaos suite: 3-member clusters on the 204-device
# fabric. One scenario kills the snapshot owner mid-question (failover
# within the suspicion window, byte-identical answer from the new owner,
# warm start from the shared cache); the other kills the coordinator
# itself mid-question (lease-race promotion within twice the member
# budget, strictly increasing epoch, then a second owner-kill answered
# from pre-replicated artifacts with zero cold parses). The tests carry a
# `race` build tag, so they exist only under the race detector.
cluster-chaos:
	$(GO) test -race -run TestClusterChaos -count=1 ./internal/cluster/

# Short native-fuzzing pass over the vendor parsers: any input must yield
# a device model, never a panic. Crashers land in testdata/fuzz/ and
# reproduce with plain `go test`.
FUZZTIME ?= 20s
fuzz-smoke:
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/vendors/cisco/
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/vendors/juniper/

cover:
	$(GO) test -coverprofile=cover.out $(COVER_PKGS)
	$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { \
		if (t+0 < min+0) { printf "coverage %.1f%% below floor %.1f%%\n", t, min; exit 1 } \
		else { printf "coverage %.1f%% meets floor %.1f%%\n", t, min } }'

check: vet vet-extra lint-fast test race soak cluster-chaos fuzz-smoke bench-smoke bench-check

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Emit a dated perf snapshot (BENCH_<date>.json) from the benchmarks and
# print per-benchmark deltas against the previous committed snapshot.
benchjson:
	$(GO) test -bench . -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson -diff

# bench-smoke: one-iteration pass over the floor-gated benchmarks — the
# parallel fabric simulation and the route-interning pair. Proves they
# still build, run, and emit their metrics without paying for a full
# `-bench .` sweep; timing floors are bench-check's job, on the committed
# snapshot, where the numbers came from enough iterations to be stable.
bench-smoke:
	$(GO) test -bench 'BenchmarkParallelism|BenchmarkIntern' -benchmem -benchtime 1x -run '^$$' .

# bench-check: the perf-regression gate. Reads the newest committed
# BENCH_*.json and fails if the dev-204 sched-speedup at 8 workers is
# below the floor or interned route churn is slower than non-interned.
SPEEDUP_FLOOR ?= 4.0
bench-check:
	$(GO) run ./cmd/benchjson -check -speedup-floor $(SPEEDUP_FLOOR)
