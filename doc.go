// Package repro is a from-scratch Go reproduction of the system described
// in "Lessons from the evolution of the Batfish configuration analysis
// tool" (SIGCOMM 2023): configuration parsing, imperative data plane
// generation with deterministic convergence, BDD-based data plane
// verification, the original architecture's Datalog and NoD/SAT baselines,
// and the paper's evaluation harness.
//
// The public API lives in package repro/batfish; bench_test.go in this
// directory regenerates every table and figure of the paper's evaluation
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results).
package repro
